//! Copy-on-write overlays: the paper's *non-persistent* VM disks.
//!
//! "the disk is not explicitly copied upon startup, and modifications
//! are stored into a diff file" (Table 2). A [`CowOverlay`] wraps a
//! shared read-only base [`BlockStore`]; reads hit the diff first and
//! fall through to the base, writes always land in the diff. Many VM
//! instances can share one master image (Figure 2's "master static
//! Linux virtual system disk ... shared by multiple dynamic
//! instances").

use std::sync::Arc;

use bytes::Bytes;
use gridvm_simcore::slot::DenseMap;
use gridvm_simcore::units::ByteSize;

use crate::block::{BlockAddr, BlockStore, MemBlockStore, StorageError};

/// A copy-on-write overlay over a shared base image.
///
/// ```
/// use std::sync::Arc;
/// use bytes::Bytes;
/// use gridvm_storage::block::{BlockAddr, BlockStore, MemBlockStore};
/// use gridvm_storage::cow::CowOverlay;
/// use gridvm_simcore::units::ByteSize;
///
/// let base = Arc::new(MemBlockStore::new(ByteSize::from_bytes(16), 8, 1).into_read_only());
/// let mut vm_disk = CowOverlay::new(Arc::clone(&base));
/// vm_disk.write(BlockAddr(0), Bytes::from(vec![7u8; 16]))?;
/// // The overlay sees the write; the base does not.
/// assert_eq!(vm_disk.read(BlockAddr(0))?, Bytes::from(vec![7u8; 16]));
/// assert_eq!(base.read(BlockAddr(0))?, base.expected_pristine(BlockAddr(0)));
/// # Ok::<(), gridvm_storage::block::StorageError>(())
/// ```
#[derive(Clone, Debug)]
pub struct CowOverlay {
    base: Arc<MemBlockStore>,
    /// Keyed by `BlockAddr.0` — bounded by the base device size.
    diff: DenseMap<Bytes>,
}

impl CowOverlay {
    /// Creates an overlay over `base`.
    pub fn new(base: Arc<MemBlockStore>) -> Self {
        CowOverlay {
            base,
            diff: DenseMap::new(),
        }
    }

    /// The shared base image.
    pub fn base(&self) -> &Arc<MemBlockStore> {
        &self.base
    }

    /// Number of blocks captured in the diff file.
    pub fn diff_blocks(&self) -> u64 {
        self.diff.len() as u64
    }

    /// Size of the diff file.
    pub fn diff_size(&self) -> ByteSize {
        ByteSize::from_bytes(self.diff_blocks() * self.base.block_size().as_u64())
    }

    /// True when `addr` has been modified relative to the base.
    pub fn is_dirty(&self, addr: BlockAddr) -> bool {
        self.diff.contains_key(addr.0)
    }

    /// Discards all modifications (the non-persistent semantics at VM
    /// shutdown).
    pub fn discard(&mut self) {
        self.diff.clear();
    }

    /// Merges the diff into a *new* owned store (commit-to-persistent:
    /// what a user does to keep a modified environment). The base is
    /// untouched.
    pub fn materialize(&self) -> MemBlockStore {
        let mut out = MemBlockStore::new(
            self.base.block_size(),
            self.base.num_blocks(),
            self.base.seed(),
        );
        for (addr, data) in self.diff.iter() {
            out.write(BlockAddr(addr), data.clone())
                .expect("diff blocks are in range and sized");
        }
        out
    }
}

impl BlockStore for CowOverlay {
    fn block_size(&self) -> ByteSize {
        self.base.block_size()
    }

    fn num_blocks(&self) -> u64 {
        self.base.num_blocks()
    }

    fn read(&self, addr: BlockAddr) -> Result<Bytes, StorageError> {
        if addr.0 >= self.num_blocks() {
            return Err(StorageError::OutOfRange {
                addr,
                blocks: self.num_blocks(),
            });
        }
        if let Some(d) = self.diff.get(addr.0) {
            return Ok(d.clone());
        }
        self.base.read(addr)
    }

    fn write(&mut self, addr: BlockAddr, data: Bytes) -> Result<(), StorageError> {
        if addr.0 >= self.num_blocks() {
            return Err(StorageError::OutOfRange {
                addr,
                blocks: self.num_blocks(),
            });
        }
        if data.len() as u64 != self.block_size().as_u64() {
            return Err(StorageError::BadBlockSize {
                expected: self.block_size(),
                got: data.len(),
            });
        }
        self.diff.insert(addr.0, data);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Arc<MemBlockStore> {
        Arc::new(MemBlockStore::new(ByteSize::from_bytes(16), 32, 5).into_read_only())
    }

    fn blk(b: u8) -> Bytes {
        Bytes::from(vec![b; 16])
    }

    #[test]
    fn reads_fall_through_to_base() {
        let b = base();
        let o = CowOverlay::new(Arc::clone(&b));
        assert_eq!(o.read(BlockAddr(3)).unwrap(), b.read(BlockAddr(3)).unwrap());
        assert_eq!(o.diff_blocks(), 0);
    }

    #[test]
    fn writes_shadow_base_without_touching_it() {
        let b = base();
        let mut o = CowOverlay::new(Arc::clone(&b));
        o.write(BlockAddr(3), blk(0x11)).unwrap();
        assert_eq!(o.read(BlockAddr(3)).unwrap(), blk(0x11));
        assert_eq!(
            b.read(BlockAddr(3)).unwrap(),
            b.expected_pristine(BlockAddr(3))
        );
        assert!(o.is_dirty(BlockAddr(3)));
        assert!(!o.is_dirty(BlockAddr(4)));
        assert_eq!(o.diff_size(), ByteSize::from_bytes(16));
    }

    #[test]
    fn two_overlays_share_base_independently() {
        let b = base();
        let mut vm_a = CowOverlay::new(Arc::clone(&b));
        let mut vm_b = CowOverlay::new(Arc::clone(&b));
        vm_a.write(BlockAddr(0), blk(0xAA)).unwrap();
        vm_b.write(BlockAddr(0), blk(0xBB)).unwrap();
        assert_eq!(vm_a.read(BlockAddr(0)).unwrap(), blk(0xAA));
        assert_eq!(vm_b.read(BlockAddr(0)).unwrap(), blk(0xBB));
    }

    #[test]
    fn discard_restores_pristine_view() {
        let b = base();
        let mut o = CowOverlay::new(Arc::clone(&b));
        o.write(BlockAddr(1), blk(0x22)).unwrap();
        o.discard();
        assert_eq!(o.diff_blocks(), 0);
        assert_eq!(
            o.read(BlockAddr(1)).unwrap(),
            b.expected_pristine(BlockAddr(1))
        );
    }

    #[test]
    fn materialize_captures_base_plus_diff() {
        let b = base();
        let mut o = CowOverlay::new(Arc::clone(&b));
        o.write(BlockAddr(2), blk(0x33)).unwrap();
        let owned = o.materialize();
        assert_eq!(owned.read(BlockAddr(2)).unwrap(), blk(0x33));
        assert_eq!(
            owned.read(BlockAddr(3)).unwrap(),
            b.expected_pristine(BlockAddr(3)),
            "unmodified blocks come from the same synthetic lineage"
        );
    }

    #[test]
    fn geometry_mirrors_base_and_bounds_checked() {
        let mut o = CowOverlay::new(base());
        assert_eq!(o.num_blocks(), 32);
        assert_eq!(o.block_size(), ByteSize::from_bytes(16));
        assert!(matches!(
            o.read(BlockAddr(32)),
            Err(StorageError::OutOfRange { .. })
        ));
        assert!(matches!(
            o.write(BlockAddr(99), blk(0)),
            Err(StorageError::OutOfRange { .. })
        ));
        assert!(matches!(
            o.write(BlockAddr(0), Bytes::from_static(b"tiny")),
            Err(StorageError::BadBlockSize { .. })
        ));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Overlay semantics equal a plain writable copy of the base.
        #[test]
        fn overlay_equals_model(ops in proptest::collection::vec((0u64..16, 0u8..=255, proptest::bool::ANY), 1..100)) {
            let b = Arc::new(MemBlockStore::new(ByteSize::from_bytes(8), 16, 77).into_read_only());
            let mut overlay = CowOverlay::new(Arc::clone(&b));
            let mut model = MemBlockStore::new(ByteSize::from_bytes(8), 16, 77);
            for (addr, byte, is_write) in ops {
                let a = BlockAddr(addr);
                if is_write {
                    overlay.write(a, Bytes::from(vec![byte; 8])).unwrap();
                    model.write(a, Bytes::from(vec![byte; 8])).unwrap();
                } else {
                    prop_assert_eq!(overlay.read(a).unwrap(), model.read(a).unwrap());
                }
            }
            prop_assert_eq!(overlay.diff_blocks(), model.written_blocks());
        }
    }
}
