//! The image server: archives static VM states and serves them either
//! block-by-block (on-demand, through a grid virtual file system) or
//! wholesale (staging) — Figure 2's server `I` and Section 3.1.

use std::collections::BTreeMap;
use std::sync::Arc;

use bytes::Bytes;
use gridvm_simcore::server::{Pipe, ServiceGrant};
use gridvm_simcore::slot::{Handle, SlotMap};
use gridvm_simcore::time::SimTime;
use gridvm_simcore::units::ByteSize;

use crate::block::{BlockAddr, BlockStore, MemBlockStore, StorageError};
use crate::disk::{AccessKind, DiskModel};
use crate::image::{CatalogError, ImageCatalog, VmImage};
use crate::staging::{stage_remote, StagingReport};

/// Errors from image-server requests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ImageServerError {
    /// Catalog problem (unknown or duplicate image).
    Catalog(CatalogError),
    /// Block-level problem.
    Storage(StorageError),
}

impl std::fmt::Display for ImageServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImageServerError::Catalog(e) => write!(f, "catalog: {e}"),
            ImageServerError::Storage(e) => write!(f, "storage: {e}"),
        }
    }
}

impl std::error::Error for ImageServerError {}

impl From<CatalogError> for ImageServerError {
    fn from(e: CatalogError) -> Self {
        ImageServerError::Catalog(e)
    }
}

impl From<StorageError> for ImageServerError {
    fn from(e: StorageError) -> Self {
        ImageServerError::Storage(e)
    }
}

/// Tag type for published-image handles.
pub enum ImageTag {}

/// A resolved handle to a published image's block store — the fast
/// key for repeated [`ImageServer::read_block_by`] calls, obtained
/// once per session via [`ImageServer::resolve`].
pub type ImageHandle = Handle<ImageTag>;

/// A server that archives VM images on a local disk and serves block
/// and staging requests.
///
/// ```
/// use gridvm_storage::disk::{DiskModel, DiskProfile};
/// use gridvm_storage::image::VmImage;
/// use gridvm_storage::imageserver::ImageServer;
/// use gridvm_storage::block::BlockAddr;
/// use gridvm_simcore::time::SimTime;
///
/// let mut server = ImageServer::new(DiskModel::new(DiskProfile::ide_2003()));
/// server.publish(VmImage::redhat_guest("rh72"))?;
/// let (grant, data) = server.read_block(SimTime::ZERO, "rh72", BlockAddr(0))?;
/// assert_eq!(data.len(), 4096);
/// assert!(grant.finish > SimTime::ZERO);
/// # Ok::<(), gridvm_storage::imageserver::ImageServerError>(())
/// ```
pub struct ImageServer {
    catalog: ImageCatalog,
    stores: SlotMap<ImageTag, Arc<MemBlockStore>>,
    /// Name → handle resolution at the frontend boundary; the hot
    /// block path is handle-indexed.
    by_name: BTreeMap<String, ImageHandle>,
    disk: DiskModel,
    blocks_served: u64,
}

impl std::fmt::Debug for ImageServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ImageServer")
            .field("images", &self.catalog.len())
            .field("blocks_served", &self.blocks_served)
            .finish()
    }
}

impl ImageServer {
    /// Creates a server whose archive lives on `disk`.
    pub fn new(disk: DiskModel) -> Self {
        ImageServer {
            catalog: ImageCatalog::new(),
            stores: SlotMap::new(),
            by_name: BTreeMap::new(),
            disk,
            blocks_served: 0,
        }
    }

    /// Publishes an image into the archive.
    ///
    /// # Errors
    ///
    /// [`ImageServerError::Catalog`] if the name is already taken.
    pub fn publish(&mut self, image: VmImage) -> Result<Arc<VmImage>, ImageServerError> {
        let arc = self.catalog.register(image)?;
        let handle = self.stores.insert(arc.base_store());
        self.by_name.insert(arc.name.clone(), handle);
        Ok(arc)
    }

    /// Resolves an image name into the handle that indexes the block
    /// path, once per session.
    ///
    /// # Errors
    ///
    /// [`ImageServerError::Catalog`] for unknown names.
    pub fn resolve(&self, name: &str) -> Result<ImageHandle, ImageServerError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| CatalogError::NotFound(name.to_owned()).into())
    }

    /// The catalog (for information-service advertisement).
    pub fn catalog(&self) -> &ImageCatalog {
        &self.catalog
    }

    /// Blocks served on demand so far.
    pub fn blocks_served(&self) -> u64 {
        self.blocks_served
    }

    /// Looks up image metadata.
    ///
    /// # Errors
    ///
    /// [`ImageServerError::Catalog`] for unknown names.
    pub fn lookup(&self, name: &str) -> Result<Arc<VmImage>, ImageServerError> {
        Ok(self.catalog.lookup(name)?)
    }

    /// Reads one image block (on-demand path). Returns the disk
    /// service grant and the data.
    ///
    /// # Errors
    ///
    /// Unknown image or out-of-range block.
    pub fn read_block(
        &mut self,
        now: SimTime,
        name: &str,
        addr: BlockAddr,
    ) -> Result<(ServiceGrant, Bytes), ImageServerError> {
        let handle = self.resolve(name)?;
        self.read_block_by(now, handle, addr)
    }

    /// Reads one image block through a pre-resolved handle — the hot
    /// path for repeated on-demand fetches.
    ///
    /// # Errors
    ///
    /// Unknown (stale) handle or out-of-range block.
    pub fn read_block_by(
        &mut self,
        now: SimTime,
        image: ImageHandle,
        addr: BlockAddr,
    ) -> Result<(ServiceGrant, Bytes), ImageServerError> {
        let store = self
            .stores
            .get(image)
            .map_err(|_| CatalogError::NotFound(format!("{image:?}")))?;
        let data = store.read(addr)?;
        let grant = self.disk.access(now, addr, AccessKind::Read);
        self.blocks_served += 1;
        Ok((grant, data))
    }

    /// Stages a whole image to a remote disk through `pipe`
    /// (GridFTP-style explicit transfer).
    ///
    /// # Errors
    ///
    /// Unknown image name.
    pub fn stage_to(
        &mut self,
        now: SimTime,
        name: &str,
        pipe: &mut Pipe,
        dst: &mut DiskModel,
    ) -> Result<StagingReport, ImageServerError> {
        let image = self.catalog.lookup(name)?;
        let size: ByteSize = image.disk_size.into();
        Ok(stage_remote(&mut self.disk, pipe, dst, size, now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskProfile;
    use gridvm_simcore::time::SimDuration;
    use gridvm_simcore::units::Bandwidth;

    fn server() -> ImageServer {
        let mut s = ImageServer::new(DiskModel::new(DiskProfile::ide_2003()));
        s.publish(VmImage::redhat_guest("rh72")).unwrap();
        s
    }

    #[test]
    fn serves_blocks_with_verifiable_content() {
        let mut s = server();
        let (g, data) = s.read_block(SimTime::ZERO, "rh72", BlockAddr(42)).unwrap();
        let expected = VmImage::redhat_guest("rh72")
            .base_store()
            .expected_pristine(BlockAddr(42));
        assert_eq!(data, expected, "content is a pure function of the image");
        assert!(g.finish > SimTime::ZERO);
        assert_eq!(s.blocks_served(), 1);
    }

    #[test]
    fn unknown_image_is_an_error() {
        let mut s = server();
        assert!(matches!(
            s.read_block(SimTime::ZERO, "nope", BlockAddr(0)),
            Err(ImageServerError::Catalog(CatalogError::NotFound(_)))
        ));
        assert!(s.lookup("nope").is_err());
        assert!(s.lookup("rh72").is_ok());
    }

    #[test]
    fn duplicate_publish_is_rejected() {
        let mut s = server();
        assert!(matches!(
            s.publish(VmImage::redhat_guest("rh72")),
            Err(ImageServerError::Catalog(CatalogError::Duplicate(_)))
        ));
    }

    #[test]
    fn out_of_range_block_is_reported() {
        let mut s = server();
        let beyond = VmImage::redhat_guest("rh72").disk_blocks();
        assert!(matches!(
            s.read_block(SimTime::ZERO, "rh72", BlockAddr(beyond)),
            Err(ImageServerError::Storage(StorageError::OutOfRange { .. }))
        ));
    }

    #[test]
    fn staging_whole_image_over_lan() {
        let mut s = server();
        let mut pipe = Pipe::new(
            SimDuration::from_micros(200),
            Bandwidth::from_mbit_per_sec(100.0),
        );
        let mut dst = DiskModel::new(DiskProfile::ide_2003());
        let r = s
            .stage_to(SimTime::ZERO, "rh72", &mut pipe, &mut dst)
            .unwrap();
        let secs = r.elapsed().as_secs_f64();
        // 2 GiB over 100 Mbit/s ≈ 171.8 s (wire-limited).
        assert!((168.0..180.0).contains(&secs), "LAN staging {secs}s");
    }

    #[test]
    fn error_display_chains_sources() {
        let e = ImageServerError::Catalog(CatalogError::NotFound("x".into()));
        assert!(e.to_string().contains("catalog"));
        let s = ImageServerError::Storage(StorageError::ReadOnly);
        assert!(s.to_string().contains("storage"));
    }
}
