//! An LRU buffer cache of block addresses.
//!
//! Models the host OS page/buffer cache: after an explicit image copy
//! (Table 2's persistent mode) the copied blocks are warm, which is
//! why the paper's reboot-after-copy is much faster than a cold-disk
//! boot. The cache tracks *which* blocks are resident, not their
//! bytes — the data plane already holds the bytes; timing is all the
//! cache influences.
//!
//! Recency bookkeeping is the shared O(1) intrusive
//! [`LruSet`](gridvm_simcore::lru::LruSet); this type adds hit/miss
//! accounting on top.

use gridvm_simcore::lru::LruSet;

use crate::block::BlockAddr;

/// Fixed-capacity LRU set of resident blocks.
///
/// ```
/// use gridvm_storage::block::BlockAddr;
/// use gridvm_storage::cache::BufferCache;
///
/// let mut c = BufferCache::new(2);
/// c.insert(BlockAddr(1));
/// c.insert(BlockAddr(2));
/// assert!(c.touch(BlockAddr(1))); // hit, refreshes LRU position
/// c.insert(BlockAddr(3));         // evicts 2 (least recent)
/// assert!(!c.touch(BlockAddr(2)));
/// assert!(c.touch(BlockAddr(1)));
/// ```
#[derive(Clone, Debug)]
pub struct BufferCache {
    resident: LruSet<BlockAddr>,
    hits: u64,
    misses: u64,
}

impl BufferCache {
    /// Creates a cache holding at most `capacity` blocks.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "zero-capacity cache");
        BufferCache {
            resident: LruSet::new(capacity),
            hits: 0,
            misses: 0,
        }
    }

    /// Capacity in blocks.
    pub fn capacity(&self) -> usize {
        self.resident.capacity()
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.resident.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }

    /// Looks up `addr`; on a hit refreshes its recency and returns
    /// `true`. Counts hit/miss statistics.
    pub fn touch(&mut self, addr: BlockAddr) -> bool {
        if self.resident.touch(&addr) {
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Checks residency without affecting recency or statistics.
    pub fn contains(&self, addr: BlockAddr) -> bool {
        self.resident.contains(&addr)
    }

    /// Inserts `addr` as most-recently-used, evicting the LRU block
    /// if full. Returns the evicted address, if any.
    pub fn insert(&mut self, addr: BlockAddr) -> Option<BlockAddr> {
        self.resident.insert(addr)
    }

    /// Removes `addr` (e.g. on invalidation). Returns whether it was
    /// resident.
    pub fn evict(&mut self, addr: BlockAddr) -> bool {
        self.resident.remove(&addr)
    }

    /// Drops everything (e.g. host reboot).
    pub fn clear(&mut self) {
        self.resident.clear();
    }

    /// Lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit ratio over all lookups (0 when none).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(n: u64) -> BlockAddr {
        BlockAddr(n)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = BufferCache::new(4);
        assert!(!c.touch(a(1)));
        c.insert(a(1));
        assert!(c.touch(a(1)));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert!((c.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = BufferCache::new(3);
        c.insert(a(1));
        c.insert(a(2));
        c.insert(a(3));
        c.touch(a(1)); // 2 is now LRU
        let evicted = c.insert(a(4));
        assert_eq!(evicted, Some(a(2)));
        assert!(c.contains(a(1)));
        assert!(c.contains(a(3)));
        assert!(c.contains(a(4)));
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let mut c = BufferCache::new(2);
        c.insert(a(1));
        c.insert(a(2));
        assert_eq!(c.insert(a(1)), None, "already resident");
        assert_eq!(c.len(), 2);
        assert_eq!(c.insert(a(3)), Some(a(2)), "1 was refreshed, 2 evicts");
    }

    #[test]
    fn explicit_eviction_and_clear() {
        let mut c = BufferCache::new(2);
        c.insert(a(1));
        assert!(c.evict(a(1)));
        assert!(!c.evict(a(1)));
        c.insert(a(2));
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn capacity_is_respected() {
        let mut c = BufferCache::new(5);
        for i in 0..100 {
            c.insert(a(i));
        }
        assert_eq!(c.len(), 5);
        // most recent five remain
        for i in 95..100 {
            assert!(c.contains(a(i)));
        }
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_panics() {
        let _ = BufferCache::new(0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The cache never exceeds capacity and a just-inserted block
        /// is always resident.
        #[test]
        fn capacity_invariant(cap in 1usize..16, ops in proptest::collection::vec(0u64..64, 1..200)) {
            let mut c = BufferCache::new(cap);
            for addr in ops {
                c.insert(BlockAddr(addr));
                prop_assert!(c.len() <= cap);
                prop_assert!(c.contains(BlockAddr(addr)));
            }
        }

        /// Sequential scan larger than capacity has zero reuse (LRU's
        /// pathological case) — verifies strict LRU, not random.
        #[test]
        fn sequential_scan_thrashes(cap in 1usize..8, rounds in 2usize..5) {
            let n = cap as u64 + 1; // scan one more than fits
            let mut c = BufferCache::new(cap);
            for _ in 0..rounds {
                for i in 0..n {
                    if !c.touch(BlockAddr(i)) {
                        c.insert(BlockAddr(i));
                    }
                }
            }
            prop_assert_eq!(c.hits(), 0, "strict LRU must thrash on scan of cap+1");
        }
    }
}
