//! Whole-image transfers: the explicit-copy path of Table 2's
//! *persistent* rows and the GridFTP-style staging of Section 3.1.
//!
//! Two cases matter to the paper:
//!
//! * [`copy_local`] — copying a disk image within one host's file
//!   system before a persistent-disk VM can start. Read and write
//!   share the same arm, so a 2 GB copy at 16 MiB/s costs ≈ 4+
//!   minutes — the paper's ">4 minutes if explicit copies of a VM
//!   disk need to be generated".
//! * [`stage_remote`] — pulling an image from a remote server over a
//!   network pipe, pipelined, so the slowest stage (source disk, the
//!   pipe, or destination disk) sets the rate.

use gridvm_simcore::server::Pipe;
use gridvm_simcore::time::{SimDuration, SimTime};
use gridvm_simcore::units::ByteSize;

use crate::block::BlockAddr;
use crate::disk::{AccessKind, DiskModel};

/// The outcome of one staging transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StagingReport {
    /// When the transfer started.
    pub started: SimTime,
    /// When the last byte was durable at the destination.
    pub finished: SimTime,
    /// Bytes moved.
    pub bytes: ByteSize,
}

impl StagingReport {
    /// Total elapsed transfer time.
    pub fn elapsed(&self) -> SimDuration {
        self.finished.duration_since(self.started)
    }

    /// Achieved end-to-end throughput in bytes/sec.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed().as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.bytes.as_f64() / secs
        }
    }
}

/// Copies `size` bytes within a single disk (read then write through
/// one arm), starting the destination at `dst_start` so source and
/// destination ranges do not alias. All copied destination blocks end
/// up warm in the buffer cache — the effect that makes a
/// post-copy boot fast in Table 2.
///
/// # Panics
///
/// Panics on a zero-byte copy.
pub fn copy_local(
    disk: &mut DiskModel,
    size: ByteSize,
    dst_start: BlockAddr,
    now: SimTime,
) -> StagingReport {
    assert!(!size.is_zero(), "zero-byte copy");
    let blocks = size.blocks(disk.profile().block_size);
    // Read the source run, then write the destination run; both
    // serialize on the same arm, which is exactly the 2x cost of a
    // same-disk copy.
    let read = disk.access_run(now, BlockAddr(0), blocks, AccessKind::Read);
    let write = disk.access_run(read.finish, dst_start, blocks, AccessKind::Write);
    StagingReport {
        started: now,
        finished: write.finish,
        bytes: size,
    }
}

/// Stages `size` bytes from a source disk through a network pipe onto
/// a destination disk, fully pipelined: the transfer proceeds at the
/// bandwidth of the slowest stage, plus one pipe latency and the
/// initial positioning costs.
///
/// # Panics
///
/// Panics on a zero-byte transfer.
pub fn stage_remote(
    src: &mut DiskModel,
    pipe: &mut Pipe,
    dst: &mut DiskModel,
    size: ByteSize,
    now: SimTime,
) -> StagingReport {
    assert!(!size.is_zero(), "zero-byte transfer");
    let src_bw = src.profile().bandwidth;
    let dst_bw = dst.profile().bandwidth;
    let eff = src_bw.min(pipe.bandwidth()).min(dst_bw);
    // Account the work on each component so their arms/queues reflect
    // the transfer for any concurrent users.
    let src_blocks = size.blocks(src.profile().block_size);
    let dst_blocks = size.blocks(dst.profile().block_size);
    let _ = src.access_run(now, BlockAddr(0), src_blocks, AccessKind::Read);
    let sent = pipe.send(now, size);
    let _ = dst.access_run(now, BlockAddr(0), dst_blocks, AccessKind::Write);
    // The pipelined finish: positioning + streaming at the bottleneck
    // + one pipe latency for the tail.
    let stream = eff.transfer_time(size);
    let positioning = src.profile().seek + dst.profile().seek;
    let finished = now + positioning + stream + pipe.latency();
    // sent.finish already covers the pipe-only view; take the later of
    // the two so a slow pipe is never under-reported.
    let finished = finished.max(sent.finish);
    StagingReport {
        started: now,
        finished,
        bytes: size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskProfile;
    use gridvm_simcore::units::Bandwidth;

    fn ide() -> DiskModel {
        DiskModel::new(DiskProfile::ide_2003())
    }

    #[test]
    fn local_copy_of_2gb_takes_over_four_minutes() {
        let mut d = ide();
        let size = ByteSize::from_gib(2);
        let blocks = size.blocks(d.profile().block_size);
        let r = copy_local(&mut d, size, BlockAddr(blocks), SimTime::ZERO);
        let secs = r.elapsed().as_secs_f64();
        assert!(
            (245.0..280.0).contains(&secs),
            "2GiB same-disk copy {secs}s (paper: >4 minutes)"
        );
    }

    #[test]
    fn copy_leaves_destination_warm() {
        let mut d = ide();
        let size = ByteSize::from_mib(64);
        let blocks = size.blocks(d.profile().block_size);
        let dst = BlockAddr(1_000_000);
        let r = copy_local(&mut d, size, dst, SimTime::ZERO);
        // Reading the freshly written destination is all cache hits.
        let g = d.access_run(r.finished, dst, blocks, AccessKind::Read);
        assert_eq!(
            g.finish.duration_since(r.finished),
            d.profile().cache_hit_time * blocks
        );
    }

    #[test]
    fn remote_staging_is_bottlenecked_by_slowest_stage() {
        let mut src = ide();
        let mut dst = ide();
        // A 10 Mbit/s WAN pipe is far slower than either disk.
        let mut pipe = Pipe::new(
            SimDuration::from_millis(30),
            Bandwidth::from_mbit_per_sec(10.0),
        );
        let size = ByteSize::from_mib(128);
        let r = stage_remote(&mut src, &mut pipe, &mut dst, size, SimTime::ZERO);
        let expect = size.as_f64() / (10e6 / 8.0);
        let got = r.elapsed().as_secs_f64();
        assert!(
            (got - expect).abs() / expect < 0.02,
            "staging {got}s vs wire-limited {expect}s"
        );
    }

    #[test]
    fn fast_pipe_staging_is_disk_limited() {
        let mut src = ide();
        let mut dst = ide();
        let mut pipe = Pipe::new(
            SimDuration::from_micros(100),
            Bandwidth::from_mbit_per_sec(1000.0),
        );
        let size = ByteSize::from_mib(256);
        let r = stage_remote(&mut src, &mut pipe, &mut dst, size, SimTime::ZERO);
        let disk_limited = size.as_f64() / (16.0 * 1024.0 * 1024.0);
        let got = r.elapsed().as_secs_f64();
        assert!(
            (got - disk_limited).abs() / disk_limited < 0.05,
            "staging {got}s vs disk-limited {disk_limited}s"
        );
    }

    #[test]
    fn report_throughput_is_consistent() {
        let mut d = ide();
        let size = ByteSize::from_mib(32);
        let r = copy_local(&mut d, size, BlockAddr(500_000), SimTime::ZERO);
        let tput = r.throughput();
        // Same-disk copy ≈ half the sequential bandwidth.
        let half_bw = 8.0 * 1024.0 * 1024.0;
        assert!(
            (tput - half_bw).abs() / half_bw < 0.1,
            "copy throughput {tput}"
        );
    }
}
