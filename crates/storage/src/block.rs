//! Sparse block stores: the data plane under disks, images and COW
//! overlays.
//!
//! A [`BlockStore`] maps block addresses to fixed-size payloads.
//! Stores are *sparse*: blocks never written return deterministic
//! synthetic content derived from the store's seed and the block
//! address, so multi-gigabyte VM images cost memory only for blocks
//! actually written — while reads remain verifiable (tests can check
//! that data read through three layers of proxies is the data the
//! image server would have produced).

use std::fmt;

use bytes::Bytes;
use gridvm_simcore::slot::DenseMap;
use gridvm_simcore::units::ByteSize;

/// Address of one block within a store.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockAddr(pub u64);

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "block#{}", self.0)
    }
}

/// Errors from block-store operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StorageError {
    /// The address lies beyond the device.
    OutOfRange {
        /// Offending address.
        addr: BlockAddr,
        /// Device size in blocks.
        blocks: u64,
    },
    /// A write payload did not match the block size.
    BadBlockSize {
        /// Expected block size in bytes.
        expected: ByteSize,
        /// Actual payload length in bytes.
        got: usize,
    },
    /// The store (or overlay base) is read-only.
    ReadOnly,
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::OutOfRange { addr, blocks } => {
                write!(f, "{addr} out of range (device has {blocks} blocks)")
            }
            StorageError::BadBlockSize { expected, got } => {
                write!(
                    f,
                    "payload of {got} bytes does not match block size {expected}"
                )
            }
            StorageError::ReadOnly => write!(f, "store is read-only"),
        }
    }
}

impl std::error::Error for StorageError {}

/// A fixed-block-size, random-access data store.
pub trait BlockStore {
    /// Block size in bytes.
    fn block_size(&self) -> ByteSize;

    /// Device capacity in blocks.
    fn num_blocks(&self) -> u64;

    /// Reads one block.
    ///
    /// # Errors
    ///
    /// [`StorageError::OutOfRange`] beyond the device.
    fn read(&self, addr: BlockAddr) -> Result<Bytes, StorageError>;

    /// Writes one block.
    ///
    /// # Errors
    ///
    /// [`StorageError::OutOfRange`], [`StorageError::BadBlockSize`],
    /// or [`StorageError::ReadOnly`].
    fn write(&mut self, addr: BlockAddr, data: Bytes) -> Result<(), StorageError>;

    /// Device capacity in bytes.
    fn capacity(&self) -> ByteSize {
        ByteSize::from_bytes(self.num_blocks() * self.block_size().as_u64())
    }
}

/// Deterministic content of an unwritten block: a repeating 8-byte
/// pattern derived from the seed and address, cheap to generate and
/// to verify.
pub(crate) fn synthetic_block(seed: u64, addr: BlockAddr, size: ByteSize) -> Bytes {
    let mut pattern = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(addr.0.wrapping_mul(0xD1B5_4A32_D192_ED03));
    pattern |= 1; // never all-zero
    let n = size.as_u64() as usize;
    let mut buf = Vec::with_capacity(n);
    while buf.len() + 8 <= n {
        buf.extend_from_slice(&pattern.to_le_bytes());
        pattern = pattern.rotate_left(7);
    }
    buf.resize(n, 0xA5);
    Bytes::from(buf)
}

/// Deterministic content of a byte range of a synthetic *file*: the
/// byte at absolute offset `i` is a pure function of `seed` and `i`,
/// so any chunking of reads yields consistent data. Used by the VFS
/// layer to export huge VM state files without materializing them.
pub fn synthetic_file_chunk(seed: u64, offset: u64, len: usize) -> Bytes {
    let mut buf = Vec::with_capacity(len);
    let mut i = offset;
    let end = offset + len as u64;
    while i < end {
        let word_idx = i / 8;
        let mut w = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(word_idx.wrapping_mul(0xD1B5_4A32_D192_ED03));
        w ^= w >> 29;
        w = w.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        let bytes = w.to_le_bytes();
        let start_in_word = (i % 8) as usize;
        let take = ((8 - start_in_word) as u64).min(end - i) as usize;
        buf.extend_from_slice(&bytes[start_in_word..start_in_word + take]);
        i += take as u64;
    }
    Bytes::from(buf)
}

/// An in-memory sparse block store.
///
/// ```
/// use bytes::Bytes;
/// use gridvm_storage::block::{BlockAddr, BlockStore, MemBlockStore};
/// use gridvm_simcore::units::ByteSize;
///
/// let mut store = MemBlockStore::new(ByteSize::from_kib(4), 1024, 7);
/// let block = store.read(BlockAddr(3))?; // synthetic content
/// assert_eq!(block.len(), 4096);
/// store.write(BlockAddr(3), Bytes::from(vec![0u8; 4096]))?;
/// assert_eq!(store.written_blocks(), 1);
/// # Ok::<(), gridvm_storage::block::StorageError>(())
/// ```
#[derive(Clone, Debug)]
pub struct MemBlockStore {
    block_size: ByteSize,
    num_blocks: u64,
    seed: u64,
    /// Keyed by `BlockAddr.0` — bounded by `num_blocks`, so the paged
    /// index stays proportional to the device size.
    written: DenseMap<Bytes>,
    read_only: bool,
}

impl MemBlockStore {
    /// Creates a sparse store of `num_blocks` blocks of `block_size`
    /// each, with synthetic content derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics on zero block size or zero capacity.
    pub fn new(block_size: ByteSize, num_blocks: u64, seed: u64) -> Self {
        assert!(!block_size.is_zero(), "zero block size");
        assert!(num_blocks > 0, "zero-capacity store");
        MemBlockStore {
            block_size,
            num_blocks,
            seed,
            written: DenseMap::new(),
            read_only: false,
        }
    }

    /// Marks the store read-only (base images are immutable).
    pub fn into_read_only(mut self) -> Self {
        self.read_only = true;
        self
    }

    /// The content seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of blocks that have been explicitly written.
    pub fn written_blocks(&self) -> u64 {
        self.written.len() as u64
    }

    /// The synthetic content the store would return for an unwritten
    /// block (exposed so tests and remote peers can verify data
    /// end-to-end without holding the store).
    pub fn expected_pristine(&self, addr: BlockAddr) -> Bytes {
        synthetic_block(self.seed, addr, self.block_size)
    }
}

impl BlockStore for MemBlockStore {
    fn block_size(&self) -> ByteSize {
        self.block_size
    }

    fn num_blocks(&self) -> u64 {
        self.num_blocks
    }

    fn read(&self, addr: BlockAddr) -> Result<Bytes, StorageError> {
        if addr.0 >= self.num_blocks {
            return Err(StorageError::OutOfRange {
                addr,
                blocks: self.num_blocks,
            });
        }
        Ok(self
            .written
            .get(addr.0)
            .cloned()
            .unwrap_or_else(|| synthetic_block(self.seed, addr, self.block_size)))
    }

    fn write(&mut self, addr: BlockAddr, data: Bytes) -> Result<(), StorageError> {
        if self.read_only {
            return Err(StorageError::ReadOnly);
        }
        if addr.0 >= self.num_blocks {
            return Err(StorageError::OutOfRange {
                addr,
                blocks: self.num_blocks,
            });
        }
        if data.len() as u64 != self.block_size.as_u64() {
            return Err(StorageError::BadBlockSize {
                expected: self.block_size,
                got: data.len(),
            });
        }
        self.written.insert(addr.0, data);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> MemBlockStore {
        MemBlockStore::new(ByteSize::from_kib(4), 100, 42)
    }

    fn block_of(byte: u8) -> Bytes {
        Bytes::from(vec![byte; 4096])
    }

    #[test]
    fn pristine_reads_are_synthetic_and_stable() {
        let s = store();
        let a = s.read(BlockAddr(5)).unwrap();
        let b = s.read(BlockAddr(5)).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 4096);
        assert_eq!(a, s.expected_pristine(BlockAddr(5)));
        assert_ne!(a, s.read(BlockAddr(6)).unwrap(), "blocks differ");
    }

    #[test]
    fn different_seeds_produce_different_content() {
        let a = MemBlockStore::new(ByteSize::from_kib(4), 10, 1);
        let b = MemBlockStore::new(ByteSize::from_kib(4), 10, 2);
        assert_ne!(a.read(BlockAddr(0)).unwrap(), b.read(BlockAddr(0)).unwrap());
    }

    #[test]
    fn writes_round_trip() {
        let mut s = store();
        s.write(BlockAddr(7), block_of(0xEE)).unwrap();
        assert_eq!(s.read(BlockAddr(7)).unwrap(), block_of(0xEE));
        assert_eq!(s.written_blocks(), 1);
        // neighbours unaffected
        assert_eq!(
            s.read(BlockAddr(8)).unwrap(),
            s.expected_pristine(BlockAddr(8))
        );
    }

    #[test]
    fn bounds_are_enforced() {
        let mut s = store();
        assert!(matches!(
            s.read(BlockAddr(100)),
            Err(StorageError::OutOfRange { .. })
        ));
        assert!(matches!(
            s.write(BlockAddr(100), block_of(0)),
            Err(StorageError::OutOfRange { .. })
        ));
    }

    #[test]
    fn payload_size_is_enforced() {
        let mut s = store();
        let err = s
            .write(BlockAddr(0), Bytes::from(vec![0u8; 100]))
            .unwrap_err();
        assert!(matches!(err, StorageError::BadBlockSize { got: 100, .. }));
    }

    #[test]
    fn read_only_store_rejects_writes() {
        let mut s = store().into_read_only();
        assert_eq!(
            s.write(BlockAddr(0), block_of(1)),
            Err(StorageError::ReadOnly)
        );
        assert!(s.read(BlockAddr(0)).is_ok());
    }

    #[test]
    fn capacity_is_blocks_times_size() {
        let s = store();
        assert_eq!(s.capacity(), ByteSize::from_kib(400));
    }

    #[test]
    fn error_display() {
        let e = StorageError::OutOfRange {
            addr: BlockAddr(9),
            blocks: 4,
        };
        assert!(e.to_string().contains("block#9"));
        assert!(StorageError::ReadOnly.to_string().contains("read-only"));
    }

    #[test]
    fn synthetic_file_chunks_are_consistent_across_chunkings() {
        let whole = synthetic_file_chunk(7, 0, 64);
        let mut pieced = Vec::new();
        pieced.extend_from_slice(&synthetic_file_chunk(7, 0, 10));
        pieced.extend_from_slice(&synthetic_file_chunk(7, 10, 21));
        pieced.extend_from_slice(&synthetic_file_chunk(7, 31, 33));
        assert_eq!(&whole[..], &pieced[..]);
        assert_ne!(whole, synthetic_file_chunk(8, 0, 64), "seed matters");
        assert!(synthetic_file_chunk(7, 123, 0).is_empty());
    }

    #[test]
    fn odd_block_sizes_fill_exactly() {
        let s = MemBlockStore::new(ByteSize::from_bytes(100), 4, 3);
        let b = s.read(BlockAddr(1)).unwrap();
        assert_eq!(b.len(), 100);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Any interleaving of writes and reads behaves like a map
        /// with synthetic defaults.
        #[test]
        fn store_matches_model(ops in proptest::collection::vec((0u64..50, 0u8..=255, proptest::bool::ANY), 1..100)) {
            let mut s = MemBlockStore::new(ByteSize::from_bytes(16), 50, 9);
            let mut model: std::collections::BTreeMap<u64, u8> = Default::default();
            for (addr, byte, is_write) in ops {
                if is_write {
                    s.write(BlockAddr(addr), Bytes::from(vec![byte; 16])).unwrap();
                    model.insert(addr, byte);
                } else {
                    let got = s.read(BlockAddr(addr)).unwrap();
                    match model.get(&addr) {
                        Some(b) => prop_assert_eq!(got, Bytes::from(vec![*b; 16])),
                        None => prop_assert_eq!(got, s.expected_pristine(BlockAddr(addr))),
                    }
                }
            }
            prop_assert_eq!(s.written_blocks() as usize, model.len());
        }
    }
}
