//! Image lifecycle tiering: "Infrequently run virtual machine images
//! will be migrated to tape. The life cycle of a virtual machine
//! ends when the image is removed from permanent storage"
//! (Section 4).
//!
//! An [`ImageArchive`] tracks where each image lives (disk or tape),
//! when it was last used, and the cost of getting it back: tape
//! recalls pay a robot/mount/seek latency plus a slow streaming
//! read, which is why a grid scheduler should recall images *before*
//! scheduling sessions onto them.

use std::collections::BTreeMap;

use gridvm_simcore::server::FifoServer;
use gridvm_simcore::time::{SimDuration, SimTime};
use gridvm_simcore::units::{Bandwidth, ByteSize};

/// Which tier an image currently occupies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Online, instantly instantiable.
    Disk,
    /// Offline; needs a recall before use.
    Tape,
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tier::Disk => f.write_str("disk"),
            Tier::Tape => f.write_str("tape"),
        }
    }
}

/// Performance profile of the tape system.
#[derive(Clone, Copy, Debug)]
pub struct TapeProfile {
    /// Robot pick + mount + position.
    pub mount_latency: SimDuration,
    /// Streaming read rate once positioned.
    pub bandwidth: Bandwidth,
}

impl Default for TapeProfile {
    /// A c. 2003 LTO-1 library: ~90 s to mount and position,
    /// ~15 MB/s streaming.
    fn default() -> Self {
        TapeProfile {
            mount_latency: SimDuration::from_secs(90),
            bandwidth: Bandwidth::from_mib_per_sec(15.0),
        }
    }
}

/// Errors from archive operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArchiveError {
    /// The image is not in the archive (life cycle over).
    Gone(
        /// The image name.
        String,
    ),
    /// The image is on tape and must be recalled first.
    OnTape(
        /// The image name.
        String,
    ),
}

impl std::fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArchiveError::Gone(n) => write!(f, "image {n:?} has been removed (life cycle ended)"),
            ArchiveError::OnTape(n) => {
                write!(f, "image {n:?} is archived to tape; recall it first")
            }
        }
    }
}

impl std::error::Error for ArchiveError {}

#[derive(Clone, Debug)]
struct Entry {
    size: ByteSize,
    tier: Tier,
    last_used: SimTime,
}

/// The tiered image archive.
///
/// ```
/// use gridvm_storage::tape::{ImageArchive, TapeProfile, Tier};
/// use gridvm_simcore::time::{SimDuration, SimTime};
/// use gridvm_simcore::units::ByteSize;
///
/// let mut arch = ImageArchive::new(TapeProfile::default(), SimDuration::from_secs(86_400));
/// arch.store(SimTime::ZERO, "rh72", ByteSize::from_gib(2));
/// assert_eq!(arch.tier("rh72"), Some(Tier::Disk));
/// ```
#[derive(Clone, Debug)]
pub struct ImageArchive {
    tape: TapeProfile,
    /// Images idle longer than this get tiered down by
    /// [`tier_down_idle`](ImageArchive::tier_down_idle).
    idle_threshold: SimDuration,
    entries: BTreeMap<String, Entry>,
    drive: FifoServer,
    recalls: u64,
}

impl ImageArchive {
    /// Creates an empty archive.
    ///
    /// # Panics
    ///
    /// Panics on a zero idle threshold.
    pub fn new(tape: TapeProfile, idle_threshold: SimDuration) -> Self {
        assert!(!idle_threshold.is_zero(), "zero idle threshold");
        ImageArchive {
            tape,
            idle_threshold,
            entries: BTreeMap::new(),
            drive: FifoServer::new(),
            recalls: 0,
        }
    }

    /// Stores (or refreshes) an image on the disk tier.
    pub fn store(&mut self, now: SimTime, name: &str, size: ByteSize) {
        self.entries.insert(
            name.to_owned(),
            Entry {
                size,
                tier: Tier::Disk,
                last_used: now,
            },
        );
    }

    /// Current tier of an image, if it still exists.
    pub fn tier(&self, name: &str) -> Option<Tier> {
        self.entries.get(name).map(|e| e.tier)
    }

    /// Number of archived images.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Recalls performed so far.
    pub fn recalls(&self) -> u64 {
        self.recalls
    }

    /// Marks an image used at `now` (instantiation). The image must
    /// be online.
    ///
    /// # Errors
    ///
    /// [`ArchiveError::Gone`] or [`ArchiveError::OnTape`].
    pub fn touch(&mut self, now: SimTime, name: &str) -> Result<(), ArchiveError> {
        let e = self
            .entries
            .get_mut(name)
            .ok_or_else(|| ArchiveError::Gone(name.to_owned()))?;
        if e.tier == Tier::Tape {
            return Err(ArchiveError::OnTape(name.to_owned()));
        }
        e.last_used = now;
        Ok(())
    }

    /// Moves every image idle past the threshold down to tape;
    /// returns the names tiered down (in name order).
    pub fn tier_down_idle(&mut self, now: SimTime) -> Vec<String> {
        let mut moved = Vec::new();
        for (name, e) in &mut self.entries {
            if e.tier == Tier::Disk
                && now.saturating_duration_since(e.last_used) > self.idle_threshold
            {
                e.tier = Tier::Tape;
                moved.push(name.clone());
            }
        }
        moved
    }

    /// Recalls an image from tape: queues on the (single) drive, pays
    /// mount latency plus a streaming read, and lands the image back
    /// on disk. Returns when the image is online. Recalling an
    /// online image returns immediately.
    ///
    /// # Errors
    ///
    /// [`ArchiveError::Gone`].
    pub fn recall(&mut self, now: SimTime, name: &str) -> Result<SimTime, ArchiveError> {
        let e = self
            .entries
            .get_mut(name)
            .ok_or_else(|| ArchiveError::Gone(name.to_owned()))?;
        if e.tier == Tier::Disk {
            return Ok(now);
        }
        let service = self.tape.mount_latency + self.tape.bandwidth.transfer_time(e.size);
        let grant = self.drive.admit(now, service);
        e.tier = Tier::Disk;
        e.last_used = grant.finish;
        self.recalls += 1;
        Ok(grant.finish)
    }

    /// Removes an image from permanent storage — "the life cycle of a
    /// virtual machine ends when the image is removed". Idempotent.
    pub fn remove(&mut self, name: &str) {
        self.entries.remove(name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn archive() -> ImageArchive {
        ImageArchive::new(TapeProfile::default(), SimDuration::from_secs(3600))
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn fresh_images_live_on_disk() {
        let mut a = archive();
        a.store(t(0), "rh72", ByteSize::from_gib(2));
        assert_eq!(a.tier("rh72"), Some(Tier::Disk));
        assert!(a.touch(t(10), "rh72").is_ok());
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn idle_images_tier_down_and_recall_costs_minutes() {
        let mut a = archive();
        a.store(t(0), "rh72", ByteSize::from_gib(2));
        a.store(t(0), "busy", ByteSize::from_gib(1));
        a.touch(t(3500), "busy").expect("online");
        let moved = a.tier_down_idle(t(3700));
        assert_eq!(moved, vec!["rh72".to_owned()]);
        assert_eq!(a.tier("busy"), Some(Tier::Disk));
        // Instantiating from tape fails until recalled.
        assert!(matches!(
            a.touch(t(3700), "rh72"),
            Err(ArchiveError::OnTape(_))
        ));
        let online = a.recall(t(3700), "rh72").expect("exists");
        // 90 s mount + 2 GiB at 15 MiB/s ≈ 137 s -> ~227 s total.
        let took = online.duration_since(t(3700)).as_secs_f64();
        assert!((200.0..260.0).contains(&took), "recall took {took}s");
        assert!(a.touch(online, "rh72").is_ok());
        assert_eq!(a.recalls(), 1);
    }

    #[test]
    fn recalls_queue_on_one_drive() {
        let mut a = archive();
        a.store(t(0), "img-a", ByteSize::from_gib(1));
        a.store(t(0), "img-b", ByteSize::from_gib(1));
        let _ = a.tier_down_idle(t(7200));
        let first = a.recall(t(7200), "img-a").expect("exists");
        let second = a.recall(t(7200), "img-b").expect("exists");
        assert!(second > first, "single drive serializes recalls");
    }

    #[test]
    fn recalling_online_images_is_free() {
        let mut a = archive();
        a.store(t(0), "hot", ByteSize::from_gib(1));
        assert_eq!(a.recall(t(5), "hot").expect("online"), t(5));
        assert_eq!(a.recalls(), 0);
    }

    #[test]
    fn removal_ends_the_life_cycle() {
        let mut a = archive();
        a.store(t(0), "doomed", ByteSize::from_gib(1));
        a.remove("doomed");
        a.remove("doomed"); // idempotent
        assert!(matches!(
            a.touch(t(1), "doomed"),
            Err(ArchiveError::Gone(_))
        ));
        assert!(matches!(
            a.recall(t(1), "doomed"),
            Err(ArchiveError::Gone(_))
        ));
        assert!(a.is_empty());
    }

    #[test]
    fn touch_resets_the_idle_clock() {
        let mut a = archive();
        a.store(t(0), "img", ByteSize::from_gib(1));
        a.touch(t(3000), "img").expect("online");
        assert!(a.tier_down_idle(t(5000)).is_empty(), "used at t=3000");
        assert_eq!(a.tier_down_idle(t(6700)), vec!["img".to_owned()]);
    }

    #[test]
    fn error_display() {
        assert!(ArchiveError::Gone("x".into())
            .to_string()
            .contains("removed"));
        assert!(ArchiveError::OnTape("y".into())
            .to_string()
            .contains("tape"));
    }
}
