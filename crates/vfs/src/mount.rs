//! Mounts: a client-side view of a remote (or loopback) NFS server,
//! optionally through a PVFS proxy.
//!
//! The transport presets mirror the paper's three deployment points:
//!
//! * [`Transport::local`] — same-host kernel RPC (Table 2 "DiskFS"
//!   comparisons use no NFS at all; `local` is used when a VFS is
//!   mounted from the host's own exports).
//! * [`Transport::loopback`] — the paper's "LoopbackNFS": a loopback-
//!   mounted NFS partition, i.e. full RPC stack but no wire.
//! * [`Transport::lan`] / [`Transport::wan`] — campus and
//!   Florida↔Northwestern paths (Table 1's PVFS experiment).

use gridvm_simcore::server::Pipe;
use gridvm_simcore::time::{SimDuration, SimTime};
use gridvm_simcore::units::Bandwidth;

use crate::protocol::{NfsError, NfsRequest, NfsResponse, NFS_BLOCK};
use crate::proxy::VfsProxy;

use gridvm_simcore::metrics::Counter;

/// RPC round-trips to the NFS server (hot: one per uncached block).
static RPC_ROUND_TRIPS: Counter = Counter::new("vfs.rpc_round_trips");
use crate::server::NfsServer;

/// A bidirectional RPC transport with per-call stack overhead.
#[derive(Clone, Debug)]
pub struct Transport {
    pipe: Pipe,
    per_rpc: SimDuration,
    label: &'static str,
}

impl Transport {
    /// Same-host RPC: microsecond-scale, memory-speed.
    pub fn local() -> Self {
        Transport {
            pipe: Pipe::new(
                SimDuration::from_micros(5),
                Bandwidth::from_mib_per_sec(400.0),
            ),
            per_rpc: SimDuration::from_micros(15),
            label: "local",
        }
    }

    /// Loopback NFS: the full client/server RPC stack with no wire.
    /// Calibrated so an 8 KiB cold read costs ≈ 1 ms of stack time on
    /// period hardware.
    pub fn loopback() -> Self {
        Transport {
            pipe: Pipe::new(
                SimDuration::from_micros(50),
                Bandwidth::from_mib_per_sec(200.0),
            ),
            per_rpc: SimDuration::from_micros(800),
            label: "loopback",
        }
    }

    /// Switched 100 Mbit/s campus LAN.
    pub fn lan() -> Self {
        Transport {
            pipe: Pipe::new(
                SimDuration::from_micros(300),
                Bandwidth::from_mbit_per_sec(100.0),
            ),
            per_rpc: SimDuration::from_micros(400),
            label: "lan",
        }
    }

    /// Wide-area path (the paper's UF↔Northwestern link): ~35 ms RTT,
    /// ~20 Mbit/s achievable.
    pub fn wan() -> Self {
        Transport {
            pipe: Pipe::new(
                SimDuration::from_millis(17),
                Bandwidth::from_mbit_per_sec(20.0),
            ),
            per_rpc: SimDuration::from_micros(400),
            label: "wan",
        }
    }

    /// A custom transport.
    pub fn custom(latency: SimDuration, bandwidth: Bandwidth, per_rpc: SimDuration) -> Self {
        Transport {
            pipe: Pipe::new(latency, bandwidth),
            per_rpc,
            label: "custom",
        }
    }

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// Adds `extra` to the per-RPC stack overhead (fault injection: a
    /// latency spike on the NFS/proxy path). Every subsequent RPC —
    /// and [`round_trip_estimate`](Transport::round_trip_estimate) —
    /// pays the surcharge; the deltas accumulate. To clear a spike,
    /// rebuild the transport.
    pub fn add_rpc_latency(&mut self, extra: SimDuration) {
        self.per_rpc += extra;
    }

    /// The current per-RPC stack overhead.
    pub fn per_rpc(&self) -> SimDuration {
        self.per_rpc
    }

    /// An unloaded small-RPC round-trip estimate (two wire
    /// traversals plus stack overhead) — used for mount handshakes
    /// and other control traffic.
    pub fn round_trip_estimate(&self) -> SimDuration {
        self.pipe.latency() * 2 + self.per_rpc
    }

    /// The round-trip cost of carrying `req` and its response across
    /// this transport, starting at `now` (request and response each
    /// traverse the pipe; stack overhead charged per call).
    fn round_trip(&mut self, now: SimTime, req: &NfsRequest, resp_size: u64) -> SimTime {
        let sent = self.pipe.send(now, req.wire_size());
        let back = self.pipe.send(
            sent.finish,
            gridvm_simcore::units::ByteSize::from_bytes(resp_size),
        );
        back.finish + self.per_rpc
    }
}

/// A mounted file system: transport + optional proxy + server.
///
/// The mount owns its server in this simulation; multi-client
/// sharing is modeled at the experiment layer by routing through the
/// same server object where needed.
///
/// ```
/// use gridvm_storage::disk::{DiskModel, DiskProfile};
/// use gridvm_vfs::mount::{Mount, Transport};
/// use gridvm_vfs::server::NfsServer;
/// use gridvm_simcore::time::SimTime;
///
/// let server = NfsServer::new(DiskModel::new(DiskProfile::ide_2003()));
/// let mut mount = Mount::new(Transport::lan(), server, None);
/// let root = mount.server().fs().root();
/// let (done, fh) = mount.create(SimTime::ZERO, root, "results");
/// assert!(fh.is_ok());
/// assert!(done > SimTime::ZERO);
/// ```
pub struct Mount {
    transport: Transport,
    proxy: Option<VfsProxy>,
    server: NfsServer,
    rpcs_sent: u64,
}

impl std::fmt::Debug for Mount {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mount")
            .field("transport", &self.transport.label)
            .field("proxied", &self.proxy.is_some())
            .field("rpcs_sent", &self.rpcs_sent)
            .finish()
    }
}

impl Mount {
    /// Creates a mount over `transport` to `server`, optionally
    /// through `proxy`.
    pub fn new(transport: Transport, server: NfsServer, proxy: Option<VfsProxy>) -> Self {
        Mount {
            transport,
            proxy,
            server,
            rpcs_sent: 0,
        }
    }

    /// The server behind this mount.
    pub fn server(&self) -> &NfsServer {
        &self.server
    }

    /// Mutable server access (setup convenience).
    pub fn server_mut(&mut self) -> &mut NfsServer {
        &mut self.server
    }

    /// The proxy, if one is configured.
    pub fn proxy(&self) -> Option<&VfsProxy> {
        self.proxy.as_ref()
    }

    /// RPCs that actually crossed the transport (proxy hits excluded).
    pub fn rpcs_sent(&self) -> u64 {
        self.rpcs_sent
    }

    /// Issues one protocol request at `now`, returning completion
    /// time and result. Reads and writes may be absorbed by the
    /// proxy.
    pub fn request(
        &mut self,
        now: SimTime,
        req: NfsRequest,
    ) -> (SimTime, Result<NfsResponse, NfsError>) {
        // Proxy fast paths.
        if let Some(proxy) = &mut self.proxy {
            match &req {
                NfsRequest::Read { fh, offset, len } => {
                    if let Some(hit_time) = proxy.try_read_hit(*fh, *offset, *len, now) {
                        // Data still comes from the (consistent)
                        // server file system; the proxy only absorbs
                        // the timing.
                        let data =
                            self.server
                                .fs()
                                .read(*fh, *offset, (*len).min(NFS_BLOCK.as_u64()));
                        return (hit_time, data.map(NfsResponse::Data));
                    }
                }
                NfsRequest::Write { fh, offset, data } => {
                    if let Some(done) = proxy.try_buffer_write(*fh, *offset, data.len() as u64, now)
                    {
                        // Write-behind: apply to the server state now
                        // (simulation keeps one canonical FS), but
                        // the client continues immediately; the wire
                        // cost is paid by the background flusher.
                        let r = self
                            .server
                            .fs_mut()
                            .write(*fh, *offset, data, now)
                            .and_then(|()| self.server.fs().getattr(*fh))
                            .map(NfsResponse::Written);
                        return (done, r);
                    }
                }
                _ => {}
            }
        }
        // Full RPC to the server.
        self.rpcs_sent += 1;
        RPC_ROUND_TRIPS.add(1);
        let (server_done, result) = self.server.handle(now, req.clone());
        let resp_size = match &result {
            Ok(r) => r.wire_size().as_u64(),
            Err(_) => 160,
        };
        let done = self
            .transport
            .round_trip(server_done.max(now), &req, resp_size);
        // Feed the proxy's caches and prefetcher.
        if let Some(proxy) = &mut self.proxy {
            if let (NfsRequest::Read { fh, offset, len }, Ok(_)) = (&req, &result) {
                let prefetch = proxy.note_read_miss(*fh, *offset, *len, done);
                for (pf_offset, pf_len) in prefetch {
                    // Prefetches run in the background against the
                    // server and do not delay the foreground reply.
                    let pf = NfsRequest::Read {
                        fh: *fh,
                        offset: pf_offset,
                        len: pf_len,
                    };
                    self.rpcs_sent += 1;
                    RPC_ROUND_TRIPS.add(1);
                    let _ = self.server.handle(done, pf);
                    proxy.install(*fh, pf_offset, pf_len);
                }
            }
        }
        (done, result)
    }

    /// Reads an arbitrary byte range by issuing as many block RPCs as
    /// needed; returns the final completion time and total bytes
    /// actually read.
    pub fn read_range(
        &mut self,
        now: SimTime,
        fh: crate::fs::FileHandle,
        offset: u64,
        len: u64,
    ) -> (SimTime, Result<u64, NfsError>) {
        let mut t = now;
        let mut read = 0u64;
        let mut cursor = offset;
        let end = offset + len;
        while cursor < end {
            let chunk = (end - cursor).min(NFS_BLOCK.as_u64());
            let (done, r) = self.request(
                t,
                NfsRequest::Read {
                    fh,
                    offset: cursor,
                    len: chunk,
                },
            );
            t = done;
            match r {
                Ok(NfsResponse::Data(d)) => {
                    read += d.len() as u64;
                    if (d.len() as u64) < chunk {
                        break; // EOF
                    }
                }
                Ok(other) => unreachable!("read returned {other:?}"),
                Err(e) => return (t, Err(e)),
            }
            cursor += chunk;
        }
        (t, Ok(read))
    }

    /// Writes an arbitrary byte range in block-sized RPCs; returns
    /// completion time.
    pub fn write_range(
        &mut self,
        now: SimTime,
        fh: crate::fs::FileHandle,
        offset: u64,
        data: &[u8],
    ) -> (SimTime, Result<(), NfsError>) {
        let mut t = now;
        let mut cursor = 0usize;
        while cursor < data.len() {
            let chunk = (data.len() - cursor).min(NFS_BLOCK.as_u64() as usize);
            let payload = bytes::Bytes::copy_from_slice(&data[cursor..cursor + chunk]);
            let (done, r) = self.request(
                t,
                NfsRequest::Write {
                    fh,
                    offset: offset + cursor as u64,
                    data: payload,
                },
            );
            t = done;
            if let Err(e) = r {
                return (t, Err(e));
            }
            cursor += chunk;
        }
        (t, Ok(()))
    }

    /// Convenience: `Create` returning the new handle.
    pub fn create(
        &mut self,
        now: SimTime,
        dir: crate::fs::FileHandle,
        name: &str,
    ) -> (SimTime, Result<crate::fs::FileHandle, NfsError>) {
        let (t, r) = self.request(
            now,
            NfsRequest::Create {
                dir,
                name: name.to_owned(),
            },
        );
        let h = r.map(|resp| match resp {
            NfsResponse::Handle(h, _) => h,
            other => unreachable!("create returned {other:?}"),
        });
        (t, h)
    }

    /// Convenience: `Lookup` returning the handle.
    pub fn lookup(
        &mut self,
        now: SimTime,
        dir: crate::fs::FileHandle,
        name: &str,
    ) -> (SimTime, Result<crate::fs::FileHandle, NfsError>) {
        let (t, r) = self.request(
            now,
            NfsRequest::Lookup {
                dir,
                name: name.to_owned(),
            },
        );
        let h = r.map(|resp| match resp {
            NfsResponse::Handle(h, _) => h,
            other => unreachable!("lookup returned {other:?}"),
        });
        (t, h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proxy::ProxyConfig;
    use gridvm_simcore::units::ByteSize;
    use gridvm_storage::disk::{DiskModel, DiskProfile};

    fn mount(transport: Transport, proxy: Option<VfsProxy>) -> Mount {
        let mut server = NfsServer::new(DiskModel::new(DiskProfile::ide_2003()));
        let root = server.fs().root();
        server
            .fs_mut()
            .create_synthetic(root, "big", ByteSize::from_mib(16), 11, SimTime::ZERO)
            .unwrap();
        Mount::new(transport, server, proxy)
    }

    #[test]
    fn wan_reads_cost_rtt_per_rpc() {
        let mut m = mount(Transport::wan(), None);
        let root = m.server().fs().root();
        let (_, fh) = m.lookup(SimTime::ZERO, root, "big");
        let fh = fh.unwrap();
        let (done, n) = m.read_range(SimTime::from_secs(1), fh, 0, 64 * 1024);
        assert_eq!(n.unwrap(), 64 * 1024);
        let elapsed = done.duration_since(SimTime::from_secs(1)).as_secs_f64();
        // 8 RPCs, each ~2*17ms latency + transfer: > 0.27 s, < 1 s.
        assert!((0.25..1.0).contains(&elapsed), "WAN 64KiB read {elapsed}s");
    }

    #[test]
    fn latency_spike_surcharges_every_rpc() {
        let spike = SimDuration::from_millis(40);
        let mut plain = Transport::lan();
        let base_rtt = plain.round_trip_estimate();
        plain.add_rpc_latency(spike);
        assert_eq!(plain.round_trip_estimate(), base_rtt + spike);
        assert_eq!(plain.per_rpc(), SimDuration::from_micros(400) + spike);

        let run = |t: Transport| {
            let mut m = mount(t, None);
            let root = m.server().fs().root();
            let (_, fh) = m.lookup(SimTime::ZERO, root, "big");
            let (done, _) = m.read_range(SimTime::from_secs(1), fh.unwrap(), 0, 64 * 1024);
            done.duration_since(SimTime::from_secs(1))
        };
        let mut spiked = Transport::lan();
        spiked.add_rpc_latency(spike);
        let extra = run(spiked).saturating_sub(run(Transport::lan()));
        // lookup + 8 data RPCs each pay the 40 ms surcharge.
        assert!(
            extra >= spike * 8,
            "expected ≥8 surcharged RPCs, got {extra}"
        );
    }

    #[test]
    fn local_reads_are_orders_of_magnitude_faster_than_wan() {
        let run = |t: Transport| {
            let mut m = mount(t, None);
            let root = m.server().fs().root();
            let (_, fh) = m.lookup(SimTime::ZERO, root, "big");
            let (done, _) = m.read_range(SimTime::from_secs(1), fh.unwrap(), 0, 128 * 1024);
            done.duration_since(SimTime::from_secs(1))
        };
        let local = run(Transport::local());
        let wan = run(Transport::wan());
        assert!(
            wan.as_secs_f64() > 5.0 * local.as_secs_f64(),
            "local {local} vs wan {wan}"
        );
    }

    #[test]
    fn proxy_absorbs_repeat_reads() {
        let proxy = VfsProxy::new(ProxyConfig::default());
        let mut m = mount(Transport::wan(), Some(proxy));
        let root = m.server().fs().root();
        let (_, fh) = m.lookup(SimTime::ZERO, root, "big");
        let fh = fh.unwrap();
        let (t1, _) = m.read_range(SimTime::from_secs(1), fh, 0, 32 * 1024);
        let rpcs_after_first = m.rpcs_sent();
        let (t2, _) = m.read_range(t1, fh, 0, 32 * 1024);
        assert_eq!(
            m.rpcs_sent(),
            rpcs_after_first,
            "second read all cache hits"
        );
        let cold = t1.duration_since(SimTime::from_secs(1));
        let warm = t2.duration_since(t1);
        assert!(
            warm.as_secs_f64() < cold.as_secs_f64() / 20.0,
            "cold {cold} warm {warm}"
        );
    }

    #[test]
    fn proxy_prefetch_makes_sequential_scans_cheap() {
        let no_proxy = {
            let mut m = mount(Transport::wan(), None);
            let root = m.server().fs().root();
            let (_, fh) = m.lookup(SimTime::ZERO, root, "big");
            let (done, _) = m.read_range(SimTime::from_secs(1), fh.unwrap(), 0, 1 << 20);
            done.duration_since(SimTime::from_secs(1))
        };
        let proxied = {
            let mut m = mount(
                Transport::wan(),
                Some(VfsProxy::new(ProxyConfig::default())),
            );
            let root = m.server().fs().root();
            let (_, fh) = m.lookup(SimTime::ZERO, root, "big");
            let (done, _) = m.read_range(SimTime::from_secs(1), fh.unwrap(), 0, 1 << 20);
            done.duration_since(SimTime::from_secs(1))
        };
        assert!(
            proxied.as_secs_f64() < no_proxy.as_secs_f64() * 0.5,
            "prefetch should cut a sequential WAN scan: {proxied} vs {no_proxy}"
        );
    }

    #[test]
    fn proxy_write_buffer_hides_wan_latency() {
        let data = vec![7u8; 64 * 1024];
        let run = |proxy: Option<VfsProxy>| {
            let mut m = mount(Transport::wan(), proxy);
            let root = m.server().fs().root();
            let (_, fh) = m.create(SimTime::ZERO, root, "out");
            let (done, r) = m.write_range(SimTime::from_secs(1), fh.unwrap(), 0, &data);
            r.unwrap();
            done.duration_since(SimTime::from_secs(1))
        };
        let direct = run(None);
        let buffered = run(Some(VfsProxy::new(ProxyConfig::default())));
        assert!(
            buffered.as_secs_f64() < direct.as_secs_f64() / 4.0,
            "buffered {buffered} vs direct {direct}"
        );
    }

    #[test]
    fn errors_travel_back_through_the_mount() {
        let mut m = mount(Transport::lan(), None);
        let root = m.server().fs().root();
        let (_, r) = m.lookup(SimTime::ZERO, root, "ghost");
        assert!(matches!(r, Err(NfsError::NotFound(_))));
    }

    #[test]
    fn read_range_stops_at_eof() {
        let mut m = mount(Transport::local(), None);
        let root = m.server().fs().root();
        let (_, fh) = m.create(SimTime::ZERO, root, "small");
        let fh = fh.unwrap();
        let (t, _) = m.write_range(SimTime::ZERO, fh, 0, b"tiny");
        let (_, n) = m.read_range(t, fh, 0, 1 << 20);
        assert_eq!(n.unwrap(), 4);
    }
}
