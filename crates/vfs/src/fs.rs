//! The in-memory hierarchical file system served over the NFS-like
//! protocol: inodes, directories, and file data that is either
//! materialized (user files) or synthetic (huge read-only VM state
//! files whose content is a pure function of a seed, so a 2 GB image
//! file costs no memory).

use std::collections::BTreeMap;
use std::fmt;

use bytes::Bytes;
use gridvm_simcore::slot::{Handle, SlotMap};
use gridvm_simcore::time::SimTime;
use gridvm_simcore::units::ByteSize;
use gridvm_storage::block::{synthetic_file_chunk, BlockAddr};

/// Tag type for inode-table handles.
enum FsTag {}

/// Handle to a file or directory (an inode number, as in NFS).
///
/// The value packs a generation-stamped slot handle into the inode
/// table, so a handle held across a remove is detectably stale even
/// after the slot is reused (NFS `ESTALE` semantics).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileHandle(pub u64);

impl fmt::Display for FileHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fh#{}", self.0)
    }
}

/// File attributes returned by `getattr`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FileAttr {
    /// Size in bytes (0 for directories).
    pub size: u64,
    /// Last modification time.
    pub mtime: SimTime,
    /// True for directories.
    pub is_dir: bool,
}

/// Errors from file-system operations (mirrors NFS status codes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FsError {
    /// Stale or never-issued handle.
    Stale(
        /// The bad handle.
        FileHandle,
    ),
    /// Name not present in the directory.
    NotFound(
        /// The name looked up.
        String,
    ),
    /// Operation requires a directory.
    NotDir,
    /// Operation requires a regular file.
    IsDir,
    /// Name already exists.
    Exists(
        /// The conflicting name.
        String,
    ),
    /// The file is read-only (synthetic VM state).
    ReadOnly,
    /// Directory not empty on remove.
    NotEmpty,
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::Stale(h) => write!(f, "stale file handle {h}"),
            FsError::NotFound(n) => write!(f, "no such entry {n:?}"),
            FsError::NotDir => write!(f, "not a directory"),
            FsError::IsDir => write!(f, "is a directory"),
            FsError::Exists(n) => write!(f, "entry {n:?} already exists"),
            FsError::ReadOnly => write!(f, "file is read-only"),
            FsError::NotEmpty => write!(f, "directory not empty"),
        }
    }
}

impl std::error::Error for FsError {}

#[derive(Clone, Debug)]
enum FileData {
    /// Ordinary user file data.
    Materialized(Vec<u8>),
    /// Huge read-only content generated from a seed (VM disk images
    /// and memory snapshots exported over NFS).
    Synthetic { seed: u64, size: u64 },
}

#[derive(Clone, Debug)]
enum Node {
    File {
        data: FileData,
        mtime: SimTime,
    },
    Dir {
        entries: BTreeMap<String, FileHandle>,
        mtime: SimTime,
    },
}

/// The in-memory file system.
///
/// ```
/// use gridvm_vfs::fs::InMemoryFs;
/// use gridvm_simcore::time::SimTime;
///
/// let mut fs = InMemoryFs::new();
/// let root = fs.root();
/// let dir = fs.mkdir(root, "home", SimTime::ZERO)?;
/// let file = fs.create(dir, "data.txt", SimTime::ZERO)?;
/// fs.write(file, 0, b"hello", SimTime::ZERO)?;
/// assert_eq!(&fs.read(file, 0, 5)?[..], b"hello");
/// # Ok::<(), gridvm_vfs::fs::FsError>(())
/// ```
#[derive(Clone, Debug)]
pub struct InMemoryFs {
    nodes: SlotMap<FsTag, Node>,
    root: FileHandle,
}

impl Default for InMemoryFs {
    fn default() -> Self {
        Self::new()
    }
}

impl InMemoryFs {
    /// Creates a file system with an empty root directory.
    pub fn new() -> Self {
        let mut nodes = SlotMap::new();
        let root = FileHandle(
            nodes
                .insert(Node::Dir {
                    entries: BTreeMap::new(),
                    mtime: SimTime::ZERO,
                })
                .pack(),
        );
        InMemoryFs { nodes, root }
    }

    /// The root directory handle.
    pub fn root(&self) -> FileHandle {
        self.root
    }

    fn node(&self, h: FileHandle) -> Result<&Node, FsError> {
        self.nodes
            .get(Handle::from_pack(h.0))
            .map_err(|_| FsError::Stale(h))
    }

    fn node_mut(&mut self, h: FileHandle) -> Result<&mut Node, FsError> {
        self.nodes
            .get_mut(Handle::from_pack(h.0))
            .map_err(|_| FsError::Stale(h))
    }

    fn alloc(&mut self, node: Node) -> FileHandle {
        FileHandle(self.nodes.insert(node).pack())
    }

    /// Looks `name` up in directory `dir`.
    ///
    /// # Errors
    ///
    /// Stale handle, not a directory, or name not found.
    pub fn lookup(&self, dir: FileHandle, name: &str) -> Result<FileHandle, FsError> {
        match self.node(dir)? {
            Node::Dir { entries, .. } => entries
                .get(name)
                .copied()
                .ok_or_else(|| FsError::NotFound(name.to_owned())),
            Node::File { .. } => Err(FsError::NotDir),
        }
    }

    /// Resolves a `/`-separated path from the root.
    ///
    /// # Errors
    ///
    /// Any component failing [`lookup`](InMemoryFs::lookup).
    pub fn resolve(&self, path: &str) -> Result<FileHandle, FsError> {
        let mut h = self.root();
        for comp in path.split('/').filter(|c| !c.is_empty()) {
            h = self.lookup(h, comp)?;
        }
        Ok(h)
    }

    /// Creates an empty regular file in `dir`.
    ///
    /// # Errors
    ///
    /// Stale/non-directory handle or existing name.
    pub fn create(
        &mut self,
        dir: FileHandle,
        name: &str,
        now: SimTime,
    ) -> Result<FileHandle, FsError> {
        self.insert_node(
            dir,
            name,
            Node::File {
                // audit:allow(alloc-in-hot): file creation owns the new node's backing store by contract; steady-state reads never reach here
                data: FileData::Materialized(Vec::new()),
                mtime: now,
            },
            now,
        )
    }

    /// Creates a read-only synthetic file of `size` bytes whose
    /// content derives from `seed` (used to export VM images over
    /// NFS without materializing gigabytes).
    ///
    /// # Errors
    ///
    /// Stale/non-directory handle or existing name.
    pub fn create_synthetic(
        &mut self,
        dir: FileHandle,
        name: &str,
        size: ByteSize,
        seed: u64,
        now: SimTime,
    ) -> Result<FileHandle, FsError> {
        self.insert_node(
            dir,
            name,
            Node::File {
                data: FileData::Synthetic {
                    seed,
                    size: size.as_u64(),
                },
                mtime: now,
            },
            now,
        )
    }

    /// Creates a subdirectory.
    ///
    /// # Errors
    ///
    /// Stale/non-directory handle or existing name.
    pub fn mkdir(
        &mut self,
        dir: FileHandle,
        name: &str,
        now: SimTime,
    ) -> Result<FileHandle, FsError> {
        self.insert_node(
            dir,
            name,
            Node::Dir {
                entries: BTreeMap::new(),
                mtime: now,
            },
            now,
        )
    }

    fn insert_node(
        &mut self,
        dir: FileHandle,
        name: &str,
        node: Node,
        now: SimTime,
    ) -> Result<FileHandle, FsError> {
        // Check before allocating to keep the namespace consistent.
        match self.node(dir)? {
            Node::Dir { entries, .. } => {
                if entries.contains_key(name) {
                    // audit:allow(alloc-in-hot): error construction on the name-collision path; the error owns its name by API contract
                    return Err(FsError::Exists(name.to_owned()));
                }
            }
            Node::File { .. } => return Err(FsError::NotDir),
        }
        let h = self.alloc(node);
        match self.node_mut(dir)? {
            Node::Dir { entries, mtime } => {
                // audit:allow(alloc-in-hot): namespace mutation stores the new entry's name; allocation is the operation itself
                entries.insert(name.to_owned(), h);
                *mtime = now;
            }
            Node::File { .. } => unreachable!("checked above"),
        }
        Ok(h)
    }

    /// Reads up to `len` bytes at `offset`; short reads happen at end
    /// of file.
    ///
    /// # Errors
    ///
    /// Stale handle or directory handle.
    pub fn read(&self, h: FileHandle, offset: u64, len: u64) -> Result<Bytes, FsError> {
        match self.node(h)? {
            Node::File { data, .. } => match data {
                FileData::Materialized(v) => {
                    let start = (offset as usize).min(v.len());
                    let end = ((offset + len) as usize).min(v.len());
                    Ok(Bytes::copy_from_slice(&v[start..end]))
                }
                FileData::Synthetic { seed, size } => {
                    let start = offset.min(*size);
                    let end = (offset + len).min(*size);
                    Ok(synthetic_file_chunk(*seed, start, (end - start) as usize))
                }
            },
            Node::Dir { .. } => Err(FsError::IsDir),
        }
    }

    /// Writes `data` at `offset`, extending (zero-filling any gap) as
    /// needed.
    ///
    /// # Errors
    ///
    /// Stale handle, directory handle, or synthetic (read-only) file.
    pub fn write(
        &mut self,
        h: FileHandle,
        offset: u64,
        data: &[u8],
        now: SimTime,
    ) -> Result<(), FsError> {
        match self.node_mut(h)? {
            Node::File { data: fd, mtime } => match fd {
                FileData::Materialized(v) => {
                    let end = offset as usize + data.len();
                    if v.len() < end {
                        v.resize(end, 0);
                    }
                    v[offset as usize..end].copy_from_slice(data);
                    *mtime = now;
                    Ok(())
                }
                FileData::Synthetic { .. } => Err(FsError::ReadOnly),
            },
            Node::Dir { .. } => Err(FsError::IsDir),
        }
    }

    /// File or directory attributes.
    ///
    /// # Errors
    ///
    /// Stale handle.
    pub fn getattr(&self, h: FileHandle) -> Result<FileAttr, FsError> {
        Ok(match self.node(h)? {
            Node::File { data, mtime } => FileAttr {
                size: match data {
                    FileData::Materialized(v) => v.len() as u64,
                    FileData::Synthetic { size, .. } => *size,
                },
                mtime: *mtime,
                is_dir: false,
            },
            Node::Dir { mtime, .. } => FileAttr {
                size: 0,
                mtime: *mtime,
                is_dir: true,
            },
        })
    }

    /// Directory entries in name order.
    ///
    /// # Errors
    ///
    /// Stale or non-directory handle.
    pub fn readdir(&self, dir: FileHandle) -> Result<Vec<(String, FileHandle)>, FsError> {
        match self.node(dir)? {
            Node::Dir { entries, .. } => Ok(entries.iter().map(|(n, h)| (n.clone(), *h)).collect()),
            Node::File { .. } => Err(FsError::NotDir),
        }
    }

    /// Removes `name` from `dir`. Directories must be empty.
    ///
    /// # Errors
    ///
    /// Stale handle, missing name, or non-empty directory.
    pub fn remove(&mut self, dir: FileHandle, name: &str, now: SimTime) -> Result<(), FsError> {
        let victim = self.lookup(dir, name)?;
        if let Node::Dir { entries, .. } = self.node(victim)? {
            if !entries.is_empty() {
                return Err(FsError::NotEmpty);
            }
        }
        match self.node_mut(dir)? {
            Node::Dir { entries, mtime } => {
                entries.remove(name);
                *mtime = now;
            }
            Node::File { .. } => return Err(FsError::NotDir),
        }
        self.nodes
            .remove(Handle::from_pack(victim.0))
            .map_err(|_| FsError::Stale(victim))?;
        Ok(())
    }

    /// First and last block indices an NFS transfer of the byte range
    /// touches (8 KiB-aligned), or `None` for an empty range. The
    /// allocation-free core of
    /// [`blocks_for_range`](InMemoryFs::blocks_for_range) for hot
    /// paths that only need the span.
    pub fn block_span(offset: u64, len: u64, block: ByteSize) -> Option<(u64, u64)> {
        if len == 0 {
            return None;
        }
        let bs = block.as_u64();
        Some((offset / bs, (offset + len - 1) / bs))
    }

    /// Maps a byte range of a file onto the 8 KiB-aligned block
    /// addresses that an NFS transfer of that range touches.
    pub fn blocks_for_range(offset: u64, len: u64, block: ByteSize) -> Vec<BlockAddr> {
        match Self::block_span(offset, len, block) {
            Some((first, last)) => (first..=last).map(BlockAddr).collect(),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t0() -> SimTime {
        SimTime::ZERO
    }

    #[test]
    fn create_write_read_round_trip() {
        let mut fs = InMemoryFs::new();
        let f = fs.create(fs.root(), "a.txt", t0()).unwrap();
        fs.write(f, 0, b"hello world", t0()).unwrap();
        assert_eq!(&fs.read(f, 0, 5).unwrap()[..], b"hello");
        assert_eq!(
            &fs.read(f, 6, 100).unwrap()[..],
            b"world",
            "short read at EOF"
        );
        assert_eq!(fs.getattr(f).unwrap().size, 11);
    }

    #[test]
    fn sparse_write_zero_fills() {
        let mut fs = InMemoryFs::new();
        let f = fs.create(fs.root(), "sparse", t0()).unwrap();
        fs.write(f, 5, b"x", t0()).unwrap();
        assert_eq!(&fs.read(f, 0, 6).unwrap()[..], b"\0\0\0\0\0x");
    }

    #[test]
    fn directories_nest_and_resolve() {
        let mut fs = InMemoryFs::new();
        let home = fs.mkdir(fs.root(), "home", t0()).unwrap();
        let user = fs.mkdir(home, "userA", t0()).unwrap();
        let f = fs.create(user, "sim.dat", t0()).unwrap();
        assert_eq!(fs.resolve("/home/userA/sim.dat").unwrap(), f);
        assert_eq!(fs.resolve("home/userA").unwrap(), user);
        assert!(matches!(
            fs.resolve("/home/nope"),
            Err(FsError::NotFound(_))
        ));
        let entries = fs.readdir(home).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].0, "userA");
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut fs = InMemoryFs::new();
        fs.create(fs.root(), "x", t0()).unwrap();
        assert!(matches!(
            fs.create(fs.root(), "x", t0()),
            Err(FsError::Exists(_))
        ));
        assert!(matches!(
            fs.mkdir(fs.root(), "x", t0()),
            Err(FsError::Exists(_))
        ));
    }

    #[test]
    fn synthetic_files_read_deterministically_and_reject_writes() {
        let mut fs = InMemoryFs::new();
        let img = fs
            .create_synthetic(fs.root(), "rh72.img", ByteSize::from_mib(64), 9, t0())
            .unwrap();
        let a = fs.read(img, 4096, 8192).unwrap();
        let b = fs.read(img, 4096, 8192).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 8192);
        assert_ne!(a, fs.read(img, 12288, 8192).unwrap());
        assert_eq!(fs.getattr(img).unwrap().size, 64 * 1024 * 1024);
        assert_eq!(fs.write(img, 0, b"no", t0()), Err(FsError::ReadOnly));
        // Reads past EOF are empty.
        assert!(fs.read(img, 64 * 1024 * 1024, 10).unwrap().is_empty());
    }

    #[test]
    fn remove_enforces_emptiness_and_staleness() {
        let mut fs = InMemoryFs::new();
        let d = fs.mkdir(fs.root(), "d", t0()).unwrap();
        let f = fs.create(d, "f", t0()).unwrap();
        assert_eq!(fs.remove(fs.root(), "d", t0()), Err(FsError::NotEmpty));
        fs.remove(d, "f", t0()).unwrap();
        fs.remove(fs.root(), "d", t0()).unwrap();
        assert!(matches!(fs.getattr(f), Err(FsError::Stale(_))));
        assert!(matches!(fs.lookup(d, "f"), Err(FsError::Stale(_))));
    }

    #[test]
    fn type_confusion_is_rejected() {
        let mut fs = InMemoryFs::new();
        let f = fs.create(fs.root(), "f", t0()).unwrap();
        assert_eq!(fs.lookup(f, "x"), Err(FsError::NotDir));
        assert_eq!(fs.read(fs.root(), 0, 1), Err(FsError::IsDir));
        assert_eq!(fs.write(fs.root(), 0, b"x", t0()), Err(FsError::IsDir));
        assert!(matches!(fs.readdir(f), Err(FsError::NotDir)));
    }

    #[test]
    fn block_range_mapping() {
        let bs = ByteSize::from_kib(8);
        assert_eq!(InMemoryFs::blocks_for_range(0, 1, bs), vec![BlockAddr(0)]);
        assert_eq!(
            InMemoryFs::blocks_for_range(8191, 2, bs),
            vec![BlockAddr(0), BlockAddr(1)]
        );
        assert_eq!(
            InMemoryFs::blocks_for_range(16384, 8192, bs),
            vec![BlockAddr(2)]
        );
        assert!(InMemoryFs::blocks_for_range(100, 0, bs).is_empty());
    }

    #[test]
    fn error_display() {
        assert!(FsError::Stale(FileHandle(3)).to_string().contains("fh#3"));
        assert!(FsError::NotFound("q".into()).to_string().contains('q'));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Writes then reads behave like a flat byte array.
        #[test]
        fn file_matches_vec_model(ops in proptest::collection::vec((0u64..512, proptest::collection::vec(0u8..=255, 1..64)), 1..40)) {
            let mut fs = InMemoryFs::new();
            let f = fs.create(fs.root(), "m", SimTime::ZERO).unwrap();
            let mut model: Vec<u8> = Vec::new();
            for (offset, data) in ops {
                fs.write(f, offset, &data, SimTime::ZERO).unwrap();
                let end = offset as usize + data.len();
                if model.len() < end { model.resize(end, 0); }
                model[offset as usize..end].copy_from_slice(&data);
            }
            let got = fs.read(f, 0, model.len() as u64 + 10).unwrap();
            prop_assert_eq!(&got[..], &model[..]);
            prop_assert_eq!(fs.getattr(f).unwrap().size, model.len() as u64);
        }
    }
}
