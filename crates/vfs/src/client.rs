//! A kernel NFS-client model with attribute caching.
//!
//! The client sits above a [`crate::mount::Mount`] and adds
//! the piece of the kernel client that matters for timing: the
//! attribute cache, which absorbs the `getattr` storms that real NFS
//! clients issue around opens and stats. PVFS inherits this layer
//! unchanged ("without requiring ... changes to native OS file system
//! clients and servers").

use gridvm_simcore::slot::DenseMap;
use gridvm_simcore::time::{SimDuration, SimTime};

use crate::fs::{FileAttr, FileHandle};
use crate::mount::Mount;
use crate::protocol::{NfsError, NfsRequest, NfsResponse};

/// Attribute-cache entry lifetime (Linux `acregmin` default: 3 s).
pub const ATTR_CACHE_TTL: SimDuration = SimDuration::from_secs(3);

/// A client with an attribute cache over one mount.
///
/// ```
/// use gridvm_storage::disk::{DiskModel, DiskProfile};
/// use gridvm_vfs::client::VfsClient;
/// use gridvm_vfs::mount::{Mount, Transport};
/// use gridvm_vfs::server::NfsServer;
/// use gridvm_simcore::time::SimTime;
///
/// let server = NfsServer::new(DiskModel::new(DiskProfile::ide_2003()));
/// let mut client = VfsClient::new(Mount::new(Transport::lan(), server, None));
/// let root = client.mount().server().fs().root();
/// let (t, attr) = client.getattr(SimTime::ZERO, root);
/// assert!(attr.unwrap().is_dir);
/// // A repeat getattr within the TTL is free (cache hit).
/// let (t2, _) = client.getattr(t, root);
/// assert_eq!(t2, t);
/// ```
pub struct VfsClient {
    mount: Mount,
    /// Keyed by the handle's slot index (dense); the stored full
    /// handle value disambiguates slot reuse across removals.
    attr_cache: DenseMap<(u64, FileAttr, SimTime)>,
    attr_hits: u64,
    attr_misses: u64,
}

/// Dense per-file key: the handle's slot index.
fn file_key(fh: FileHandle) -> u64 {
    fh.0 & 0xFFFF_FFFF
}

impl std::fmt::Debug for VfsClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VfsClient")
            .field("attr_hits", &self.attr_hits)
            .field("attr_misses", &self.attr_misses)
            .finish()
    }
}

impl VfsClient {
    /// Wraps a mount.
    pub fn new(mount: Mount) -> Self {
        VfsClient {
            mount,
            attr_cache: DenseMap::new(),
            attr_hits: 0,
            attr_misses: 0,
        }
    }

    /// The underlying mount.
    pub fn mount(&self) -> &Mount {
        &self.mount
    }

    /// Mutable access to the underlying mount.
    pub fn mount_mut(&mut self) -> &mut Mount {
        &mut self.mount
    }

    /// Attribute-cache hits.
    pub fn attr_hits(&self) -> u64 {
        self.attr_hits
    }

    /// Attribute-cache misses.
    pub fn attr_misses(&self) -> u64 {
        self.attr_misses
    }

    /// `getattr` through the attribute cache.
    pub fn getattr(
        &mut self,
        now: SimTime,
        fh: FileHandle,
    ) -> (SimTime, Result<FileAttr, NfsError>) {
        if let Some((owner, attr, expiry)) = self.attr_cache.get(file_key(fh)) {
            if *owner == fh.0 && now < *expiry {
                self.attr_hits += 1;
                return (now, Ok(*attr));
            }
        }
        self.attr_misses += 1;
        let (t, r) = self.mount.request(now, NfsRequest::Getattr { fh });
        let r = r.map(|resp| match resp {
            NfsResponse::Attr(a) => a,
            other => unreachable!("getattr returned {other:?}"),
        });
        if let Ok(a) = &r {
            self.attr_cache
                .insert(file_key(fh), (fh.0, *a, t + ATTR_CACHE_TTL));
        }
        (t, r)
    }

    /// `lookup`, caching the returned attributes.
    pub fn lookup(
        &mut self,
        now: SimTime,
        dir: FileHandle,
        name: &str,
    ) -> (SimTime, Result<FileHandle, NfsError>) {
        let (t, r) = self.mount.request(
            now,
            NfsRequest::Lookup {
                dir,
                name: name.to_owned(),
            },
        );
        let r = r.map(|resp| match resp {
            NfsResponse::Handle(h, attr) => {
                self.attr_cache
                    .insert(file_key(h), (h.0, attr, t + ATTR_CACHE_TTL));
                h
            }
            other => unreachable!("lookup returned {other:?}"),
        });
        (t, r)
    }

    /// Resolves a multi-component path, one lookup RPC per component.
    pub fn resolve(&mut self, now: SimTime, path: &str) -> (SimTime, Result<FileHandle, NfsError>) {
        let mut t = now;
        let mut h = self.mount.server().fs().root();
        for comp in path.split('/').filter(|c| !c.is_empty()) {
            let (done, r) = self.lookup(t, h, comp);
            t = done;
            match r {
                Ok(next) => h = next,
                Err(e) => return (t, Err(e)),
            }
        }
        (t, Ok(h))
    }

    /// Reads a byte range (delegates to the mount; invalidates no
    /// attributes).
    pub fn read(
        &mut self,
        now: SimTime,
        fh: FileHandle,
        offset: u64,
        len: u64,
    ) -> (SimTime, Result<u64, NfsError>) {
        self.mount.read_range(now, fh, offset, len)
    }

    /// Writes a byte range and invalidates the cached attributes
    /// (size/mtime changed).
    pub fn write(
        &mut self,
        now: SimTime,
        fh: FileHandle,
        offset: u64,
        data: &[u8],
    ) -> (SimTime, Result<(), NfsError>) {
        if matches!(self.attr_cache.get(file_key(fh)), Some((owner, ..)) if *owner == fh.0) {
            self.attr_cache.remove(file_key(fh));
        }
        self.mount.write_range(now, fh, offset, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mount::Transport;
    use crate::server::NfsServer;
    use gridvm_storage::disk::{DiskModel, DiskProfile};

    fn client() -> VfsClient {
        let mut server = NfsServer::new(DiskModel::new(DiskProfile::ide_2003()));
        let root = server.fs().root();
        let home = server.fs_mut().mkdir(root, "home", SimTime::ZERO).unwrap();
        let f = server.fs_mut().create(home, "data", SimTime::ZERO).unwrap();
        server
            .fs_mut()
            .write(f, 0, b"payload", SimTime::ZERO)
            .unwrap();
        VfsClient::new(Mount::new(Transport::lan(), server, None))
    }

    #[test]
    fn attr_cache_expires_after_ttl() {
        let mut c = client();
        let root = c.mount().server().fs().root();
        let (t1, _) = c.getattr(SimTime::ZERO, root);
        let (t2, _) = c.getattr(t1, root);
        assert_eq!(t2, t1, "hit within TTL");
        let later = t1 + ATTR_CACHE_TTL + SimDuration::from_millis(1);
        let (t3, _) = c.getattr(later, root);
        assert!(t3 > later, "expired entry refetches");
        assert_eq!(c.attr_hits(), 1);
        assert_eq!(c.attr_misses(), 2);
    }

    #[test]
    fn resolve_walks_components() {
        let mut c = client();
        let (t, r) = c.resolve(SimTime::ZERO, "/home/data");
        let fh = r.unwrap();
        assert!(t > SimTime::ZERO);
        let (_, n) = c.read(t, fh, 0, 100);
        assert_eq!(n.unwrap(), 7);
    }

    #[test]
    fn resolve_missing_component_fails() {
        let mut c = client();
        let (_, r) = c.resolve(SimTime::ZERO, "/home/ghost/file");
        assert!(matches!(r, Err(NfsError::NotFound(_))));
    }

    #[test]
    fn lookup_populates_attr_cache() {
        let mut c = client();
        let (t, r) = c.resolve(SimTime::ZERO, "/home/data");
        let fh = r.unwrap();
        let (t2, attr) = c.getattr(t, fh);
        assert_eq!(t2, t, "lookup already cached the attributes");
        assert_eq!(attr.unwrap().size, 7);
    }

    #[test]
    fn write_invalidates_attr_cache() {
        let mut c = client();
        let (t, r) = c.resolve(SimTime::ZERO, "/home/data");
        let fh = r.unwrap();
        let (t2, _) = c.write(t, fh, 0, b"longer payload!");
        let misses_before = c.attr_misses();
        let (t3, attr) = c.getattr(t2, fh);
        assert!(t3 > t2, "stale attrs refetched after write");
        assert_eq!(attr.unwrap().size, 15);
        assert_eq!(c.attr_misses(), misses_before + 1);
    }
}
