//! The NFS-like RPC protocol: request/response types, wire sizes and
//! per-operation server CPU costs.
//!
//! The paper's PVFS operates at the NFS protocol level ("on-demand
//! block transfers ... without requiring dynamically-linked libraries
//! or changes to native OS file system clients and servers"), so the
//! protocol here mirrors NFSv2/v3's core operations with the standard
//! 8 KiB transfer size.

use bytes::Bytes;
use gridvm_simcore::time::SimDuration;
use gridvm_simcore::units::ByteSize;

use crate::fs::{FileAttr, FileHandle, FsError};

/// The standard NFS transfer (rsize/wsize) granularity.
pub const NFS_BLOCK: ByteSize = ByteSize::from_kib(8);

/// Approximate on-the-wire size of RPC headers (RPC + XDR + NFS).
pub const RPC_HEADER: ByteSize = ByteSize::from_bytes(128);

/// An NFS request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NfsRequest {
    /// Resolve `name` within directory `dir`.
    Lookup {
        /// Parent directory handle.
        dir: FileHandle,
        /// Entry name.
        name: String,
    },
    /// Fetch attributes of `fh`.
    Getattr {
        /// Target handle.
        fh: FileHandle,
    },
    /// Read `len` bytes at `offset`.
    Read {
        /// File handle.
        fh: FileHandle,
        /// Byte offset.
        offset: u64,
        /// Byte count (at most [`NFS_BLOCK`] per RPC, enforced by
        /// clients).
        len: u64,
    },
    /// Write `data` at `offset`.
    Write {
        /// File handle.
        fh: FileHandle,
        /// Byte offset.
        offset: u64,
        /// Payload.
        data: Bytes,
    },
    /// Create a file `name` in `dir`.
    Create {
        /// Parent directory handle.
        dir: FileHandle,
        /// New entry name.
        name: String,
    },
    /// Create a directory `name` in `dir`.
    Mkdir {
        /// Parent directory handle.
        dir: FileHandle,
        /// New directory name.
        name: String,
    },
    /// List directory `dir`.
    Readdir {
        /// Directory handle.
        dir: FileHandle,
    },
    /// Remove `name` from `dir`.
    Remove {
        /// Parent directory handle.
        dir: FileHandle,
        /// Entry name.
        name: String,
    },
}

/// An NFS response (success payloads; failures use [`NfsError`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NfsResponse {
    /// Resolved handle plus its attributes.
    Handle(FileHandle, FileAttr),
    /// Attributes.
    Attr(FileAttr),
    /// Read data (short at EOF).
    Data(Bytes),
    /// Write acknowledged; returns the new attributes.
    Written(FileAttr),
    /// Directory listing.
    Entries(Vec<(String, FileHandle)>),
    /// Remove acknowledged.
    Removed,
}

/// Protocol-level errors (the NFS status word).
pub type NfsError = FsError;

impl NfsRequest {
    /// Bytes this request puts on the wire.
    pub fn wire_size(&self) -> ByteSize {
        let body = match self {
            NfsRequest::Lookup { name, .. }
            | NfsRequest::Create { name, .. }
            | NfsRequest::Mkdir { name, .. }
            | NfsRequest::Remove { name, .. } => name.len() as u64,
            NfsRequest::Getattr { .. } | NfsRequest::Readdir { .. } => 0,
            NfsRequest::Read { .. } => 16,
            NfsRequest::Write { data, .. } => 16 + data.len() as u64,
        };
        RPC_HEADER + ByteSize::from_bytes(body)
    }

    /// The per-request CPU cost at the server (protocol decode,
    /// metadata work), excluding disk time.
    pub fn service_cost(&self) -> SimDuration {
        match self {
            NfsRequest::Lookup { .. } => SimDuration::from_micros(40),
            NfsRequest::Getattr { .. } => SimDuration::from_micros(20),
            NfsRequest::Read { .. } => SimDuration::from_micros(60),
            NfsRequest::Write { .. } => SimDuration::from_micros(80),
            NfsRequest::Create { .. } | NfsRequest::Mkdir { .. } => SimDuration::from_micros(120),
            NfsRequest::Readdir { .. } => SimDuration::from_micros(100),
            NfsRequest::Remove { .. } => SimDuration::from_micros(100),
        }
    }
}

impl NfsResponse {
    /// Bytes this response puts on the wire.
    pub fn wire_size(&self) -> ByteSize {
        let body = match self {
            NfsResponse::Handle(..) => 96,
            NfsResponse::Attr(_) | NfsResponse::Written(_) => 88,
            NfsResponse::Data(d) => 8 + d.len() as u64,
            NfsResponse::Entries(es) => es.iter().map(|(n, _)| n.len() as u64 + 16).sum::<u64>(),
            NfsResponse::Removed => 8,
        };
        RPC_HEADER + ByteSize::from_bytes(body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridvm_simcore::time::SimTime;

    fn attr() -> FileAttr {
        FileAttr {
            size: 10,
            mtime: SimTime::ZERO,
            is_dir: false,
        }
    }

    #[test]
    fn request_wire_sizes_scale_with_payload() {
        let small = NfsRequest::Write {
            fh: FileHandle(1),
            offset: 0,
            data: Bytes::from_static(b"x"),
        };
        let big = NfsRequest::Write {
            fh: FileHandle(1),
            offset: 0,
            data: Bytes::from(vec![0u8; 8192]),
        };
        assert!(big.wire_size() > small.wire_size());
        assert!(big.wire_size() > ByteSize::from_kib(8));
        let read = NfsRequest::Read {
            fh: FileHandle(1),
            offset: 0,
            len: 8192,
        };
        assert!(
            read.wire_size() < ByteSize::from_bytes(256),
            "reads are small on the wire"
        );
    }

    #[test]
    fn response_data_dominates_wire_size() {
        let resp = NfsResponse::Data(Bytes::from(vec![0u8; 8192]));
        assert!(resp.wire_size() > ByteSize::from_kib(8));
        assert!(NfsResponse::Removed.wire_size() < ByteSize::from_bytes(256));
    }

    #[test]
    fn entries_size_sums_names() {
        let resp = NfsResponse::Entries(vec![
            ("a".into(), FileHandle(1)),
            ("bb".into(), FileHandle(2)),
        ]);
        assert_eq!(
            resp.wire_size(),
            RPC_HEADER + ByteSize::from_bytes(1 + 16 + 2 + 16)
        );
        let _ = NfsResponse::Handle(FileHandle(1), attr()).wire_size();
    }

    #[test]
    fn service_costs_are_positive_and_ordered() {
        let g = NfsRequest::Getattr { fh: FileHandle(1) }.service_cost();
        let w = NfsRequest::Write {
            fh: FileHandle(1),
            offset: 0,
            data: Bytes::new(),
        }
        .service_cost();
        assert!(g < w, "getattr is the cheapest op");
        assert!(!g.is_zero());
    }
}
