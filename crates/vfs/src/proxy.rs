//! The PVFS proxy (Figure 2): client-side caching, prefetching and
//! write buffering interposed between the kernel NFS client and a
//! remote server.
//!
//! "Client-side VFS proxies at the host V cache VM state from image
//! servers, while proxies within virtual machines cache user blocks
//! from a data server D." The proxy is what lets Table 1's PVFS rows
//! stay within a couple of percent of local execution, and what the
//! ablation bench `ablation_proxy_cache` switches off.

use gridvm_simcore::lru::LruSet;
use gridvm_simcore::metrics::Counter;
use gridvm_simcore::slot::DenseMap;
use gridvm_simcore::time::{SimDuration, SimTime};

/// Blocks served from the proxy cache (hot: one add per read hit).
static PROXY_HITS: Counter = Counter::new("vfs.proxy_hits");
/// Read misses forwarded to the server.
static PROXY_MISSES: Counter = Counter::new("vfs.proxy_misses");
/// Blocks fetched ahead of demand.
static PROXY_PREFETCHED: Counter = Counter::new("vfs.proxy_prefetched");

use crate::fs::{FileHandle, InMemoryFs};
use crate::protocol::NFS_BLOCK;

/// Proxy tuning parameters.
#[derive(Clone, Copy, Debug)]
pub struct ProxyConfig {
    /// Block-cache capacity, in NFS blocks.
    pub cache_blocks: usize,
    /// How many blocks ahead to prefetch on a sequential miss.
    pub prefetch_depth: u64,
    /// Write-behind buffer capacity, in NFS blocks.
    pub write_buffer_blocks: usize,
    /// Cost of serving one block from the proxy cache.
    pub hit_cost: SimDuration,
}

impl Default for ProxyConfig {
    /// 64 MiB cache, prefetch 8 blocks, 4 MiB write buffer, 30 µs
    /// per cached block.
    fn default() -> Self {
        ProxyConfig {
            cache_blocks: (64 * 1024) / 8,
            prefetch_depth: 8,
            write_buffer_blocks: 512,
            hit_cost: SimDuration::from_micros(30),
        }
    }
}

impl ProxyConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on zero cache capacity.
    pub fn validated(self) -> Self {
        assert!(self.cache_blocks > 0, "zero proxy cache");
        self
    }
}

/// The proxy state.
///
/// ```
/// use gridvm_vfs::proxy::{ProxyConfig, VfsProxy};
/// use gridvm_vfs::fs::FileHandle;
/// use gridvm_simcore::time::SimTime;
///
/// let mut p = VfsProxy::new(ProxyConfig::default());
/// let fh = FileHandle(5);
/// assert!(p.try_read_hit(fh, 0, 8192, SimTime::ZERO).is_none()); // cold
/// p.install(fh, 0, 8192);
/// assert!(p.try_read_hit(fh, 0, 8192, SimTime::ZERO).is_some()); // warm
/// ```
#[derive(Clone, Debug)]
pub struct VfsProxy {
    config: ProxyConfig,
    /// `(file, block)` residency with O(1) recency bookkeeping.
    cache: LruSet<(u64, u64)>,
    /// Per-file last read end offset, for sequentiality detection.
    /// Keyed by the handle's slot index (dense); the stored full
    /// handle value disambiguates slot reuse across removals.
    last_read_end: DenseMap<(u64, u64)>,
    buffered_blocks: usize,
    hits: u64,
    misses: u64,
    prefetched: u64,
    flushes: u64,
}

impl VfsProxy {
    /// Creates a cold proxy.
    pub fn new(config: ProxyConfig) -> Self {
        let config = config.validated();
        VfsProxy {
            cache: LruSet::new(config.cache_blocks),
            config,
            last_read_end: DenseMap::new(),
            buffered_blocks: 0,
            hits: 0,
            misses: 0,
            prefetched: 0,
            flushes: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ProxyConfig {
        &self.config
    }

    /// Cache hits served.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses observed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Blocks fetched ahead of demand.
    pub fn prefetched(&self) -> u64 {
        self.prefetched
    }

    /// Write-buffer flushes forced by capacity.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Blocks currently cached.
    pub fn cached_blocks(&self) -> usize {
        self.cache.len()
    }

    fn touch(&mut self, key: (u64, u64)) -> bool {
        self.cache.touch(&key)
    }

    /// Dense per-file key: the handle's slot index.
    fn file_key(fh: FileHandle) -> u64 {
        fh.0 & 0xFFFF_FFFF
    }

    fn set_last_read_end(&mut self, fh: FileHandle, end: u64) {
        self.last_read_end.insert(Self::file_key(fh), (fh.0, end));
    }

    fn insert(&mut self, key: (u64, u64)) {
        self.cache.insert(key);
    }

    /// If every block of `[offset, offset+len)` in `fh` is cached,
    /// refreshes them and returns the hit completion time.
    pub fn try_read_hit(
        &mut self,
        fh: FileHandle,
        offset: u64,
        len: u64,
        now: SimTime,
    ) -> Option<SimTime> {
        let Some((first, last)) =
            InMemoryFs::block_span(offset, len.min(NFS_BLOCK.as_u64()), NFS_BLOCK)
        else {
            return Some(now);
        };
        if first == last {
            // Single-block read — the dominant shape: `touch` is both
            // the residency probe and the recency refresh, so the hit
            // path costs one cache lookup instead of two.
            if !self.cache.touch(&(fh.0, first)) {
                return None;
            }
            self.hits += 1;
            PROXY_HITS.add(1);
            self.set_last_read_end(fh, offset + len);
            return Some(now + self.config.hit_cost);
        }
        let all_cached = (first..=last).all(|b| self.cache.contains(&(fh.0, b)));
        if !all_cached {
            return None;
        }
        for b in first..=last {
            let hit = self.touch((fh.0, b));
            debug_assert!(hit);
        }
        let count = last - first + 1;
        self.hits += count;
        PROXY_HITS.add(count);
        self.set_last_read_end(fh, offset + len);
        Some(now + self.config.hit_cost * count)
    }

    /// Records a read miss that was served by the server, installs
    /// the blocks, and — when the access is sequential — returns the
    /// `(offset, len)` ranges the proxy should prefetch.
    pub fn note_read_miss(
        &mut self,
        fh: FileHandle,
        offset: u64,
        len: u64,
        _completed: SimTime,
    ) -> Vec<(u64, u64)> {
        let len = len.min(NFS_BLOCK.as_u64());
        let sequential = self
            .last_read_end
            .get(Self::file_key(fh))
            .is_some_and(|(owner, end)| *owner == fh.0 && *end == offset);
        self.misses += 1;
        PROXY_MISSES.add(1);
        self.install(fh, offset, len);
        self.set_last_read_end(fh, offset + len);
        if !sequential || self.config.prefetch_depth == 0 {
            return Vec::new();
        }
        let bs = NFS_BLOCK.as_u64();
        let next = offset + len;
        let mut out = Vec::new();
        for i in 0..self.config.prefetch_depth {
            let pf_offset = next + i * bs;
            let first_block = pf_offset / bs;
            if self.cache.contains(&(fh.0, first_block)) {
                continue;
            }
            out.push((pf_offset, bs));
        }
        self.prefetched += out.len() as u64;
        PROXY_PREFETCHED.add(out.len() as u64);
        out
    }

    /// Marks the blocks of a range as cached (used for demand fills
    /// and prefetch completions).
    pub fn install(&mut self, fh: FileHandle, offset: u64, len: u64) {
        if let Some((first, last)) = InMemoryFs::block_span(offset, len, NFS_BLOCK) {
            for b in first..=last {
                self.insert((fh.0, b));
            }
        }
    }

    /// Attempts to absorb a write into the write-behind buffer. On
    /// success returns the (fast) completion time; returns `None`
    /// when the buffer is full — the caller must then issue a
    /// synchronous RPC, which implicitly represents the flush.
    pub fn try_buffer_write(
        &mut self,
        fh: FileHandle,
        offset: u64,
        len: u64,
        now: SimTime,
    ) -> Option<SimTime> {
        let blocks = match InMemoryFs::block_span(offset, len, NFS_BLOCK) {
            Some((first, last)) => (last - first + 1) as usize,
            None => 0,
        };
        if self.buffered_blocks + blocks > self.config.write_buffer_blocks {
            // Buffer full: the synchronous path drains it.
            self.buffered_blocks = 0;
            self.flushes += 1;
            return None;
        }
        self.buffered_blocks += blocks;
        // Written data is also readable from the cache.
        self.install(fh, offset, len);
        Some(now + self.config.hit_cost * blocks as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fh(n: u64) -> FileHandle {
        FileHandle(n)
    }

    fn bs() -> u64 {
        NFS_BLOCK.as_u64()
    }

    #[test]
    fn miss_install_hit_cycle() {
        let mut p = VfsProxy::new(ProxyConfig::default());
        assert!(p.try_read_hit(fh(1), 0, bs(), SimTime::ZERO).is_none());
        let prefetch = p.note_read_miss(fh(1), 0, bs(), SimTime::ZERO);
        assert!(prefetch.is_empty(), "first access is not sequential");
        let hit = p.try_read_hit(fh(1), 0, bs(), SimTime::ZERO);
        assert_eq!(hit, Some(SimTime::ZERO + p.config.hit_cost));
        assert_eq!(p.hits(), 1);
        assert_eq!(p.misses(), 1);
    }

    #[test]
    fn sequential_misses_trigger_prefetch() {
        let mut p = VfsProxy::new(ProxyConfig::default());
        let _ = p.note_read_miss(fh(1), 0, bs(), SimTime::ZERO);
        let pf = p.note_read_miss(fh(1), bs(), bs(), SimTime::ZERO);
        assert_eq!(pf.len(), 8, "default depth");
        assert_eq!(pf[0], (2 * bs(), bs()));
        // After install, the prefetched range hits.
        for (o, l) in pf {
            p.install(fh(1), o, l);
        }
        assert!(p
            .try_read_hit(fh(1), 2 * bs(), bs(), SimTime::ZERO)
            .is_some());
        assert!(p.prefetched() >= 8);
    }

    #[test]
    fn random_access_does_not_prefetch() {
        let mut p = VfsProxy::new(ProxyConfig::default());
        let _ = p.note_read_miss(fh(1), 0, bs(), SimTime::ZERO);
        let pf = p.note_read_miss(fh(1), 100 * bs(), bs(), SimTime::ZERO);
        assert!(pf.is_empty());
    }

    #[test]
    fn files_are_isolated() {
        let mut p = VfsProxy::new(ProxyConfig::default());
        p.install(fh(1), 0, bs());
        assert!(p.try_read_hit(fh(2), 0, bs(), SimTime::ZERO).is_none());
    }

    #[test]
    fn cache_capacity_evicts_lru() {
        let mut p = VfsProxy::new(ProxyConfig {
            cache_blocks: 4,
            ..ProxyConfig::default()
        });
        for i in 0..4 {
            p.install(fh(1), i * bs(), bs());
        }
        let _ = p.touch((1, 0)); // refresh block 0
        p.install(fh(1), 100 * bs(), bs()); // evicts block 1 (LRU)
        assert!(p.try_read_hit(fh(1), 0, bs(), SimTime::ZERO).is_some());
        assert!(p.try_read_hit(fh(1), bs(), bs(), SimTime::ZERO).is_none());
        assert_eq!(p.cached_blocks(), 4);
    }

    #[test]
    fn write_buffer_fills_then_flushes() {
        let mut p = VfsProxy::new(ProxyConfig {
            write_buffer_blocks: 2,
            ..ProxyConfig::default()
        });
        assert!(p.try_buffer_write(fh(1), 0, bs(), SimTime::ZERO).is_some());
        assert!(p
            .try_buffer_write(fh(1), bs(), bs(), SimTime::ZERO)
            .is_some());
        // Third write exceeds capacity: synchronous flush.
        assert!(p
            .try_buffer_write(fh(1), 2 * bs(), bs(), SimTime::ZERO)
            .is_none());
        assert_eq!(p.flushes(), 1);
        // Buffer drained: next write buffers again.
        assert!(p
            .try_buffer_write(fh(1), 3 * bs(), bs(), SimTime::ZERO)
            .is_some());
    }

    #[test]
    fn buffered_writes_are_readable_from_cache() {
        let mut p = VfsProxy::new(ProxyConfig::default());
        p.try_buffer_write(fh(1), 0, bs(), SimTime::ZERO).unwrap();
        assert!(p.try_read_hit(fh(1), 0, bs(), SimTime::ZERO).is_some());
    }

    #[test]
    fn zero_length_read_is_trivially_hit() {
        let mut p = VfsProxy::new(ProxyConfig::default());
        assert_eq!(
            p.try_read_hit(fh(1), 0, 0, SimTime::from_secs(3)),
            Some(SimTime::from_secs(3))
        );
    }
}
