//! # gridvm-vfs
//!
//! The grid virtual file system of Section 3.1 and Figure 2: an
//! NFS-like block-level RPC protocol, an in-memory hierarchical file
//! system and server, a client with attribute caching, and the
//! PVFS-style *proxy* that adds client-side block caching,
//! prefetching and write buffering between a kernel NFS client and a
//! remote server.
//!
//! The paper's data-management design distributes a VM session across
//! an **image server** (VM state), a **compute server** (where the
//! VMM runs) and a **data server** (user files), all connected by
//! virtual-file-system sessions. Two results depend on this stack:
//!
//! * Table 1's `VM, PVFS` rows — application I/O and VM state pulled
//!   through proxy-cached NFS over a WAN must cost only a few percent
//!   for compute-bound applications.
//! * Table 2's `LoopbackNFS` rows — VM state accessed via a
//!   loopback-mounted NFS partition pays per-RPC overheads on every
//!   cold block.
//!
//! Modules:
//!
//! * [`protocol`] — RPC message types and the wire-cost model.
//! * [`fs`] — the in-memory hierarchical file system (inodes,
//!   directories, block-addressed file data).
//! * [`server`] — an NFS daemon serving a file system from a disk.
//! * [`client`] — a kernel-client model with attribute cache.
//! * [`proxy`] — the PVFS proxy: LRU block cache, sequential
//!   prefetch, write-behind buffer.
//! * [`mount`] — composing client → (proxy →) server over local,
//!   loopback or WAN transports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod fs;
pub mod mount;
pub mod protocol;
pub mod proxy;
pub mod server;

pub use client::VfsClient;
pub use fs::{FileHandle, InMemoryFs};
pub use mount::{Mount, Transport};
pub use protocol::{NfsError, NfsRequest, NfsResponse};
pub use proxy::{ProxyConfig, VfsProxy};
pub use server::NfsServer;
