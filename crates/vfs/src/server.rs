//! The NFS daemon: serves an [`InMemoryFs`] from a timed disk.
//!
//! Request handling = per-op CPU cost (FIFO through the daemon) +
//! disk block accesses for data operations. Attribute and directory
//! operations touch only metadata (assumed resident).

use gridvm_simcore::server::FifoServer;
use gridvm_simcore::time::SimTime;
use gridvm_storage::disk::{AccessKind, DiskModel};

use crate::fs::{FileHandle, InMemoryFs};
use crate::protocol::{NfsError, NfsRequest, NfsResponse, NFS_BLOCK};

/// One NFS server: a file system, a daemon queue, and a disk.
///
/// ```
/// use gridvm_storage::disk::{DiskModel, DiskProfile};
/// use gridvm_vfs::protocol::NfsRequest;
/// use gridvm_vfs::server::NfsServer;
/// use gridvm_simcore::time::SimTime;
///
/// let mut server = NfsServer::new(DiskModel::new(DiskProfile::ide_2003()));
/// let root = server.fs().root();
/// let (done, resp) = server.handle(SimTime::ZERO, NfsRequest::Mkdir { dir: root, name: "data".into() });
/// assert!(resp.is_ok());
/// assert!(done > SimTime::ZERO);
/// ```
pub struct NfsServer {
    fs: InMemoryFs,
    daemon: FifoServer,
    disk: DiskModel,
    requests: u64,
}

impl std::fmt::Debug for NfsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NfsServer")
            .field("requests", &self.requests)
            .finish()
    }
}

impl NfsServer {
    /// Creates a server with an empty file system on `disk`.
    pub fn new(disk: DiskModel) -> Self {
        NfsServer {
            fs: InMemoryFs::new(),
            daemon: FifoServer::new(),
            disk,
            requests: 0,
        }
    }

    /// Read access to the served file system (for setup and
    /// assertions).
    pub fn fs(&self) -> &InMemoryFs {
        &self.fs
    }

    /// Mutable access to the served file system (test/setup
    /// convenience; bypasses timing).
    pub fn fs_mut(&mut self) -> &mut InMemoryFs {
        &mut self.fs
    }

    /// The disk under the file system (for cache assertions).
    pub fn disk(&self) -> &DiskModel {
        &self.disk
    }

    /// Requests handled so far.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Handles one request arriving at `now`; returns the completion
    /// time and the protocol result.
    pub fn handle(
        &mut self,
        now: SimTime,
        req: NfsRequest,
    ) -> (SimTime, Result<NfsResponse, NfsError>) {
        self.requests += 1;
        let cpu = self.daemon.admit(now, req.service_cost());
        let mut done = cpu.finish;
        let result = match req {
            NfsRequest::Lookup { dir, name } => self.fs.lookup(dir, &name).and_then(|h| {
                let attr = self.fs.getattr(h)?;
                Ok(NfsResponse::Handle(h, attr))
            }),
            NfsRequest::Getattr { fh } => self.fs.getattr(fh).map(NfsResponse::Attr),
            NfsRequest::Read { fh, offset, len } => {
                let len = len.min(NFS_BLOCK.as_u64());
                match self.fs.read(fh, offset, len) {
                    Ok(data) => {
                        done = self.disk_touch(done, fh, offset, len, AccessKind::Read);
                        Ok(NfsResponse::Data(data))
                    }
                    Err(e) => Err(e),
                }
            }
            NfsRequest::Write { fh, offset, data } => {
                let len = data.len() as u64;
                match self.fs.write(fh, offset, &data, now) {
                    Ok(()) => {
                        done = self.disk_touch(done, fh, offset, len, AccessKind::Write);
                        let attr = self.fs.getattr(fh).expect("just wrote");
                        Ok(NfsResponse::Written(attr))
                    }
                    Err(e) => Err(e),
                }
            }
            NfsRequest::Create { dir, name } => self.fs.create(dir, &name, now).and_then(|h| {
                let attr = self.fs.getattr(h)?;
                Ok(NfsResponse::Handle(h, attr))
            }),
            NfsRequest::Mkdir { dir, name } => self.fs.mkdir(dir, &name, now).and_then(|h| {
                let attr = self.fs.getattr(h)?;
                Ok(NfsResponse::Handle(h, attr))
            }),
            NfsRequest::Readdir { dir } => self.fs.readdir(dir).map(NfsResponse::Entries),
            NfsRequest::Remove { dir, name } => self
                .fs
                .remove(dir, &name, now)
                .map(|()| NfsResponse::Removed),
        };
        (done, result)
    }

    /// Charges disk time for the blocks a byte range touches. Blocks
    /// are addressed per-file by mixing the handle into the block
    /// address space so different files do not alias in the disk
    /// cache.
    fn disk_touch(
        &mut self,
        now: SimTime,
        fh: FileHandle,
        offset: u64,
        len: u64,
        kind: AccessKind,
    ) -> SimTime {
        if len == 0 {
            return now;
        }
        let mut done = now;
        if let Some((first, last)) = InMemoryFs::block_span(offset, len, NFS_BLOCK) {
            for b in first..=last {
                let addr = gridvm_storage::block::BlockAddr(fh.0 << 40 | b);
                let g = self.disk.access(done, addr, kind);
                done = g.finish;
            }
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use gridvm_simcore::time::SimDuration;
    use gridvm_storage::disk::DiskProfile;

    fn server() -> NfsServer {
        NfsServer::new(DiskModel::new(DiskProfile::ide_2003()))
    }

    #[test]
    fn full_protocol_walk() {
        let mut s = server();
        let root = s.fs().root();
        let (_, r) = s.handle(
            SimTime::ZERO,
            NfsRequest::Mkdir {
                dir: root,
                name: "home".into(),
            },
        );
        let home = match r.unwrap() {
            NfsResponse::Handle(h, attr) => {
                assert!(attr.is_dir);
                h
            }
            other => panic!("unexpected {other:?}"),
        };
        let (_, r) = s.handle(
            SimTime::ZERO,
            NfsRequest::Create {
                dir: home,
                name: "f".into(),
            },
        );
        let f = match r.unwrap() {
            NfsResponse::Handle(h, _) => h,
            other => panic!("unexpected {other:?}"),
        };
        let (_, r) = s.handle(
            SimTime::ZERO,
            NfsRequest::Write {
                fh: f,
                offset: 0,
                data: Bytes::from_static(b"grid"),
            },
        );
        assert!(matches!(r.unwrap(), NfsResponse::Written(a) if a.size == 4));
        let (_, r) = s.handle(
            SimTime::ZERO,
            NfsRequest::Read {
                fh: f,
                offset: 0,
                len: 100,
            },
        );
        assert!(matches!(r.unwrap(), NfsResponse::Data(d) if &d[..] == b"grid"));
        let (_, r) = s.handle(SimTime::ZERO, NfsRequest::Readdir { dir: home });
        assert!(matches!(r.unwrap(), NfsResponse::Entries(e) if e.len() == 1));
        let (_, r) = s.handle(
            SimTime::ZERO,
            NfsRequest::Remove {
                dir: home,
                name: "f".into(),
            },
        );
        assert!(matches!(r.unwrap(), NfsResponse::Removed));
        assert_eq!(s.requests(), 6);
    }

    #[test]
    fn lookup_failures_propagate() {
        let mut s = server();
        let root = s.fs().root();
        let (_, r) = s.handle(
            SimTime::ZERO,
            NfsRequest::Lookup {
                dir: root,
                name: "ghost".into(),
            },
        );
        assert!(matches!(r, Err(NfsError::NotFound(_))));
    }

    #[test]
    fn reads_cost_disk_time_once_then_cache() {
        let mut s = server();
        let root = s.fs().root();
        let img = s
            .fs_mut()
            .create_synthetic(
                root,
                "img",
                gridvm_simcore::units::ByteSize::from_mib(1),
                3,
                SimTime::ZERO,
            )
            .unwrap();
        let (t1, _) = s.handle(
            SimTime::ZERO,
            NfsRequest::Read {
                fh: img,
                offset: 0,
                len: 8192,
            },
        );
        let (t2, _) = s.handle(
            t1,
            NfsRequest::Read {
                fh: img,
                offset: 0,
                len: 8192,
            },
        );
        let cold = t1.duration_since(SimTime::ZERO);
        let warm = t2.duration_since(t1);
        assert!(warm < cold, "cold {cold} vs warm {warm}");
        assert!(cold > SimDuration::from_millis(5), "cold read pays a seek");
    }

    #[test]
    fn oversized_read_is_clamped_to_nfs_block() {
        let mut s = server();
        let root = s.fs().root();
        let img = s
            .fs_mut()
            .create_synthetic(
                root,
                "img",
                gridvm_simcore::units::ByteSize::from_mib(1),
                3,
                SimTime::ZERO,
            )
            .unwrap();
        let (_, r) = s.handle(
            SimTime::ZERO,
            NfsRequest::Read {
                fh: img,
                offset: 0,
                len: 1 << 20,
            },
        );
        match r.unwrap() {
            NfsResponse::Data(d) => assert_eq!(d.len() as u64, NFS_BLOCK.as_u64()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn different_files_do_not_alias_in_cache() {
        let mut s = server();
        let root = s.fs().root();
        let a = s.fs_mut().create(root, "a", SimTime::ZERO).unwrap();
        let b = s.fs_mut().create(root, "b", SimTime::ZERO).unwrap();
        s.fs_mut().write(a, 0, &[1u8; 8192], SimTime::ZERO).unwrap();
        s.fs_mut().write(b, 0, &[2u8; 8192], SimTime::ZERO).unwrap();
        let (t1, _) = s.handle(
            SimTime::ZERO,
            NfsRequest::Read {
                fh: a,
                offset: 0,
                len: 8192,
            },
        );
        // Reading b at the same offset must still be a cold miss.
        let (t2, _) = s.handle(
            t1,
            NfsRequest::Read {
                fh: b,
                offset: 0,
                len: 8192,
            },
        );
        assert!(t2.duration_since(t1) > SimDuration::from_millis(5));
    }
}
