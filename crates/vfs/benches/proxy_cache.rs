//! Criterion bench: block-cache churn through the PVFS proxy and the
//! host buffer cache — the hit/miss/evict mixes every Table 1 and
//! Table 2 replication pays per block.
//!
//! The 10k-block churn loops match the acceptance bar for the shared
//! O(1) LRU: run `cargo bench -p gridvm-vfs` before and after a cache
//! change and compare medians.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gridvm_simcore::time::SimTime;
use gridvm_storage::block::BlockAddr;
use gridvm_storage::cache::BufferCache;
use gridvm_vfs::fs::FileHandle;
use gridvm_vfs::protocol::NFS_BLOCK;
use gridvm_vfs::proxy::{ProxyConfig, VfsProxy};

fn bench_cache_churn(c: &mut Criterion) {
    c.bench_function("proxy: 10k-block churn, hits+misses+evictions", |b| {
        // Working set (2048 blocks) larger than the cache (1024), so
        // the loop continuously hits, misses, installs and evicts.
        let cfg = ProxyConfig {
            cache_blocks: 1024,
            prefetch_depth: 0,
            ..ProxyConfig::default()
        };
        let bs = NFS_BLOCK.as_u64();
        b.iter_batched(
            || VfsProxy::new(cfg),
            |mut proxy| {
                let fh = FileHandle(1);
                let mut hits = 0usize;
                for i in 0..10_000u64 {
                    let offset = (i * 769 % 2048) * bs;
                    if proxy.try_read_hit(fh, offset, bs, SimTime::ZERO).is_some() {
                        hits += 1;
                    } else {
                        let _ = proxy.note_read_miss(fh, offset, bs, SimTime::ZERO);
                    }
                }
                hits
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("proxy: 10k sequential read misses w/ prefetch", |b| {
        b.iter_batched(
            || VfsProxy::new(ProxyConfig::default()),
            |mut proxy| {
                let fh = FileHandle(1);
                let mut total = 0usize;
                for i in 0..10_000u64 {
                    let offset = i * 8192;
                    if proxy
                        .try_read_hit(fh, offset, 8192, SimTime::ZERO)
                        .is_none()
                    {
                        let pf = proxy.note_read_miss(fh, offset, 8192, SimTime::ZERO);
                        for (o, l) in pf {
                            proxy.install(fh, o, l);
                        }
                        total += 1;
                    }
                }
                total
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("buffer cache: 100k touch-or-insert at capacity", |b| {
        b.iter_batched(
            || BufferCache::new(4096),
            |mut cache| {
                for i in 0..100_000u64 {
                    if !cache.touch(BlockAddr(i % 8192)) {
                        cache.insert(BlockAddr(i % 8192));
                    }
                }
                cache.len()
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_cache_churn);
criterion_main!(benches);
