//! Shared experiment framework: CLI options, the [`Experiment`]
//! trait, the parallel replication driver, and text/JSON reporting.
//!
//! Every reproduction binary is an [`Experiment`]: a list of
//! [`Scenario`]s, a `run_sample` that produces named measurements for
//! one `(scenario, sample)` pair, and an optional epilogue. The
//! framework owns everything else — seed derivation, fanning samples
//! across OS threads through
//! [`ReplicationRunner`](gridvm_simcore::replication::ReplicationRunner),
//! per-scenario statistics, merged [`Metrics`] registries, the text
//! table, and the `--json` trajectory file.
//!
//! Determinism: the seed of `(scenario, sample)` is
//! `derive_seed(split(master, scenario_label), sample)`, a pure
//! function of the master seed and the scenario's label. Samples are
//! merged in index order. Summary statistics and merged metrics are
//! therefore bit-identical for every `--threads` value, including 1.

use std::fmt::Write as _;
use std::time::Instant;

use gridvm_simcore::metrics::Metrics;
use gridvm_simcore::replication::{derive_seed, ReplicationRunner};
use gridvm_simcore::rng::SimRng;
use gridvm_simcore::stats::OnlineStats;

/// Common options every reproduction binary accepts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Options {
    /// Master seed; every random stream derives from it.
    pub seed: u64,
    /// Number of measurement samples per scenario (0 = per-experiment
    /// default).
    pub samples: usize,
    /// Quick mode: shrink workloads for smoke runs.
    pub quick: bool,
    /// Worker threads for the replication runner (0 = one per core).
    pub threads: usize,
    /// When set, write the JSON report here.
    pub json: Option<std::path::PathBuf>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            seed: 20030517, // ICDCS 2003's opening day
            samples: 0,
            quick: false,
            threads: 0,
            json: None,
        }
    }
}

/// A malformed command line, with the message shown to the user.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UsageError(pub String);

impl std::fmt::Display for UsageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}\n\n{}", self.0, USAGE)
    }
}

impl std::error::Error for UsageError {}

/// The flag reference printed on usage errors and `--help`.
pub const USAGE: &str = "\
Options:
  --seed N       master seed (default 20030517)
  --samples N    measurement samples per scenario (default: per experiment)
  --threads N    worker threads, 0 = one per core (default 0)
  --json PATH    also write the report as JSON to PATH
  --quick        shrink workloads for a smoke run
  --help         print this help";

impl Options {
    /// Parses flags from an argument iterator (without the program
    /// name). Unknown flags and malformed values produce a
    /// [`UsageError`] listing the known flags.
    pub fn parse<I>(args: I) -> Result<Self, UsageError>
    where
        I: IntoIterator<Item = String>,
    {
        let mut opts = Options::default();
        let mut args = args.into_iter();
        fn value<T: std::str::FromStr>(
            flag: &str,
            kind: &str,
            v: Option<String>,
        ) -> Result<T, UsageError> {
            let v = v.ok_or_else(|| UsageError(format!("error: {flag} needs a value")))?;
            v.parse()
                .map_err(|_| UsageError(format!("error: {flag} value {v:?} is not a {kind}")))
        }
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--seed" => opts.seed = value("--seed", "u64", args.next())?,
                "--samples" => opts.samples = value("--samples", "usize", args.next())?,
                "--threads" => opts.threads = value("--threads", "usize", args.next())?,
                "--json" => {
                    let v = args
                        .next()
                        .ok_or_else(|| UsageError("error: --json needs a path".to_owned()))?;
                    opts.json = Some(std::path::PathBuf::from(v));
                }
                "--quick" => opts.quick = true,
                "--help" | "-h" => {
                    return Err(UsageError("help requested".to_owned()));
                }
                other => {
                    return Err(UsageError(format!("error: unknown option {other:?}")));
                }
            }
        }
        Ok(opts)
    }

    /// Parses the process arguments; on a usage error, prints the
    /// message plus the known flags and exits (0 for `--help`, 2
    /// otherwise) instead of panicking.
    pub fn from_args() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(opts) => opts,
            Err(e) if e.0 == "help requested" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }

    /// The sample count to use given an experiment default.
    pub fn samples_or(&self, default: usize) -> usize {
        if self.samples > 0 {
            self.samples
        } else if self.quick {
            default.div_ceil(10).max(2)
        } else {
            default
        }
    }
}

/// One named quantity measured by a sample.
#[derive(Clone, Debug, PartialEq)]
pub struct Measurement {
    /// Stable measurement name (JSON key and table column/row).
    pub name: &'static str,
    /// The measured value.
    pub value: f64,
}

/// Shorthand constructor for a [`Measurement`].
pub fn m(name: &'static str, value: f64) -> Measurement {
    Measurement { name, value }
}

/// One experimental condition: a labelled cell of the experiment's
/// design matrix, replicated `samples` times.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scenario {
    /// Position in the experiment's scenario list; `run_sample` uses
    /// it to recover the condition's parameters.
    pub index: usize,
    /// Human-readable condition label (also the seed-lineage label,
    /// so renaming a scenario re-seeds only that scenario).
    pub label: String,
    /// Replications of this scenario.
    pub samples: usize,
}

impl Scenario {
    /// Creates a scenario descriptor.
    pub fn new(index: usize, label: impl Into<String>, samples: usize) -> Self {
        Scenario {
            index,
            label: label.into(),
            samples,
        }
    }
}

/// Per-sample context handed to [`Experiment::run_sample`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SampleCtx {
    /// Scenario index (same as `scenario.index`).
    pub scenario: usize,
    /// Sample index within the scenario.
    pub sample: usize,
    /// Seed derived from `(master seed, scenario label, sample)`.
    pub seed: u64,
}

impl SampleCtx {
    /// A generator seeded for this `(scenario, sample)` pair.
    pub fn rng(&self) -> SimRng {
        SimRng::seed_from(self.seed)
    }
}

/// A reproduction experiment: the only thing a binary implements.
pub trait Experiment: Sync {
    /// Experiment title for the banner and the JSON report.
    fn title(&self) -> &str;

    /// The design matrix. Called once per run.
    fn scenarios(&self, opts: &Options) -> Vec<Scenario>;

    /// Runs one independent replication of one scenario and returns
    /// its named measurements. Must draw all randomness from
    /// `ctx.rng()` (or `ctx.seed`) so results are reproducible and
    /// thread-count independent.
    fn run_sample(&self, scenario: &Scenario, ctx: &SampleCtx, opts: &Options) -> Vec<Measurement>;

    /// The paper's reference value for a scenario, when one exists
    /// (rendered as a trailing `paper` column).
    fn paper_reference(&self, _scenario: &Scenario) -> Option<f64> {
        None
    }

    /// Free-form text printed after the table (takeaway lines,
    /// cross-scenario comparisons, claim checks).
    fn epilogue(&self, _report: &ExperimentReport, _opts: &Options) -> Option<String> {
        None
    }
}

/// Summary of one scenario: per-measurement statistics over its
/// samples, plus the metrics its replications recorded.
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// The scenario descriptor.
    pub scenario: Scenario,
    /// `(measurement name, stats over samples)` in first-seen order.
    pub measurements: Vec<(&'static str, OnlineStats)>,
    /// Metrics merged over this scenario's replications (index
    /// order).
    pub metrics: Metrics,
    /// The paper's reference value, when the experiment supplies one.
    pub paper: Option<f64>,
}

impl ScenarioReport {
    /// Stats for a named measurement, when present.
    pub fn stats(&self, name: &str) -> Option<&OnlineStats> {
        self.measurements
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, s)| s)
    }

    /// Mean of a named measurement (NaN when absent — loud in
    /// downstream arithmetic, which is what an epilogue bug deserves).
    pub fn mean(&self, name: &str) -> f64 {
        self.stats(name).map(|s| s.mean()).unwrap_or(f64::NAN)
    }
}

/// Everything one experiment run produced.
#[derive(Clone, Debug)]
pub struct ExperimentReport {
    /// Experiment title.
    pub title: String,
    /// Master seed the run used.
    pub seed: u64,
    /// Worker threads the replication runner used.
    pub threads: usize,
    /// Whether quick mode was active.
    pub quick: bool,
    /// Per-scenario summaries, in scenario order.
    pub scenarios: Vec<ScenarioReport>,
    /// Metrics merged across all scenarios (scenario order).
    pub metrics: Metrics,
    /// Wall-clock runtime of the measurement phase, seconds.
    pub elapsed_secs: f64,
}

impl ExperimentReport {
    /// The scenario report with the given label.
    pub fn scenario(&self, label: &str) -> Option<&ScenarioReport> {
        self.scenarios.iter().find(|s| s.scenario.label == label)
    }
}

/// Runs every scenario of `exp`, fanning `(scenario, sample)` pairs
/// across the replication runner's threads.
pub fn run_experiment<E: Experiment + ?Sized>(exp: &E, opts: &Options) -> ExperimentReport {
    let scenarios = exp.scenarios(opts);
    // Flatten the design matrix into independent work items so
    // single-sample scenarios still parallelize across scenarios.
    let mut items: Vec<(usize, usize, u64)> = Vec::new(); // (scenario, sample, seed)
    let master = SimRng::seed_from(opts.seed);
    for s in &scenarios {
        let scenario_master = master.split(&s.label).next_u64();
        for i in 0..s.samples {
            items.push((s.index, i, derive_seed(scenario_master, i as u64)));
        }
    }
    let seeds: Vec<u64> = items.iter().map(|(_, _, seed)| *seed).collect();
    let runner = ReplicationRunner::new(opts.threads);
    let started = Instant::now();
    let out = runner.run_seeded(&seeds, |rctx| {
        let (scenario_idx, sample_idx, seed) = items[rctx.index];
        let ctx = SampleCtx {
            scenario: scenario_idx,
            sample: sample_idx,
            seed,
        };
        exp.run_sample(&scenarios[scenario_idx], &ctx, opts)
    });
    let elapsed_secs = started.elapsed().as_secs_f64();

    // Regroup linear results by scenario, in sample order (the item
    // list was built scenario-major, so a stable pass suffices).
    let mut reports: Vec<ScenarioReport> = scenarios
        .iter()
        .map(|s| ScenarioReport {
            scenario: s.clone(),
            measurements: Vec::new(),
            metrics: Metrics::new(),
            paper: exp.paper_reference(s),
        })
        .collect();
    for (k, measurements) in out.results.iter().enumerate() {
        let (scenario_idx, _, _) = items[k];
        let report = &mut reports[scenario_idx];
        for mm in measurements {
            match report.measurements.iter_mut().find(|(n, _)| *n == mm.name) {
                Some((_, stats)) => stats.record(mm.value),
                None => {
                    let mut stats = OnlineStats::new();
                    stats.record(mm.value);
                    report.measurements.push((mm.name, stats));
                }
            }
        }
        report.metrics.merge(&out.replication_metrics[k]);
    }
    let mut metrics = Metrics::new();
    for r in &reports {
        metrics.merge(&r.metrics);
    }
    ExperimentReport {
        title: exp.title().to_owned(),
        seed: opts.seed,
        threads: runner.threads(),
        quick: opts.quick,
        scenarios: reports,
        metrics,
        elapsed_secs,
    }
}

/// Parses options, runs the experiment, prints the report (and the
/// epilogue), and writes the `--json` file when requested. The single
/// `main` body every reproduction binary shares.
pub fn run_main<E: Experiment + ?Sized>(exp: &E) {
    let opts = Options::from_args();
    banner(exp.title(), &opts);
    let report = run_experiment(exp, &opts);
    println!("{}", render_report(&report));
    if let Some(text) = exp.epilogue(&report, &opts) {
        println!("{text}");
    }
    if let Some(path) = &opts.json {
        match std::fs::write(path, to_json(&report)) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("error: cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}

/// A one-line experiment banner.
pub fn banner(title: &str, opts: &Options) {
    println!("=== {title} ===");
    println!(
        "seed={} samples={} threads={} quick={}",
        opts.seed,
        if opts.samples == 0 {
            "default".to_owned()
        } else {
            opts.samples.to_string()
        },
        if opts.threads == 0 {
            "auto".to_owned()
        } else {
            opts.threads.to_string()
        },
        opts.quick
    );
    println!();
}

fn fmt_num(x: f64) -> String {
    if !x.is_finite() {
        return "—".to_owned();
    }
    let a = x.abs();
    if a >= 10_000.0 {
        format!("{x:.0}")
    } else if a >= 100.0 {
        format!("{x:.1}")
    } else if a >= 1.0 {
        format!("{x:.3}")
    } else {
        format!("{x:.4}")
    }
}

/// Renders the standard report: a statistics table, the runtime
/// footer, and a warning when bounded trace logs dropped entries.
pub fn render_report(report: &ExperimentReport) -> String {
    let all_single = report.scenarios.iter().all(|s| s.scenario.samples == 1);
    let mut names: Vec<&'static str> = Vec::new();
    for s in &report.scenarios {
        for (n, _) in &s.measurements {
            if !names.contains(n) {
                names.push(n);
            }
        }
    }
    let has_paper = report.scenarios.iter().any(|s| s.paper.is_some());
    let label_width = report
        .scenarios
        .iter()
        .map(|s| s.scenario.label.len())
        .max()
        .unwrap_or(8)
        .max(8);

    let mut out = String::new();
    if all_single && names.len() > 1 {
        // Wide layout: one row per scenario, one column per
        // measurement (each scenario ran once, so mean == the value).
        let mut headers: Vec<&str> = vec!["scenario"];
        headers.extend(names.iter().copied());
        let rows: Vec<Vec<String>> = report
            .scenarios
            .iter()
            .map(|s| {
                let mut row = vec![s.scenario.label.clone()];
                for n in &names {
                    row.push(
                        s.stats(n)
                            .map(|st| fmt_num(st.mean()))
                            .unwrap_or_else(|| "—".to_owned()),
                    );
                }
                row
            })
            .collect();
        out.push_str(&render_table(&headers, &rows, label_width));
    } else {
        let metric_col = names.len() > 1;
        let mut headers: Vec<&str> = vec!["scenario"];
        if metric_col {
            headers.push("metric");
        }
        headers.extend(["n", "mean", "std", "min", "max"]);
        if has_paper {
            headers.push("paper");
        }
        let mut rows = Vec::new();
        for s in &report.scenarios {
            for (name, stats) in &s.measurements {
                let mut row = vec![s.scenario.label.clone()];
                if metric_col {
                    row.push((*name).to_owned());
                }
                row.push(stats.count().to_string());
                row.push(fmt_num(stats.mean()));
                row.push(fmt_num(stats.std_dev()));
                row.push(fmt_num(stats.min()));
                row.push(fmt_num(stats.max()));
                if has_paper {
                    row.push(s.paper.map(fmt_num).unwrap_or_else(|| "—".to_owned()));
                }
                rows.push(row);
            }
        }
        out.push_str(&render_table(&headers, &rows, label_width));
    }

    let dropped = report.metrics.counter("trace.dropped");
    if dropped > 0 {
        let _ = writeln!(
            out,
            "\nWARNING: bounded trace logs dropped {dropped} entries during this run; \
             causal history in trace-based checks is truncated"
        );
    }
    let mut first_hist = true;
    for (name, h) in report.metrics.histograms() {
        if first_hist {
            let _ = writeln!(out);
            first_hist = false;
        }
        let _ = writeln!(out, "hist {name}: {h}");
    }
    let _ = write!(
        out,
        "\nelapsed {:.2} s on {} thread{}",
        report.elapsed_secs,
        report.threads,
        if report.threads == 1 { "" } else { "s" }
    );
    out
}

/// Renders a header + aligned rows, left-aligning the first column
/// and right-aligning the rest.
pub fn render_table(headers: &[&str], rows: &[Vec<String>], first_width: usize) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    widths[0] = widths[0].max(first_width);
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let mut line = format!("{:<width$}", headers[0], width = widths[0]);
    for (h, w) in headers[1..].iter().zip(&widths[1..]) {
        let _ = write!(line, "  {h:>w$}");
    }
    let _ = writeln!(out, "{line}");
    let _ = writeln!(out, "{}", "-".repeat(line.len()));
    for row in rows {
        let mut line = format!("{:<width$}", row[0], width = widths[0]);
        for (cell, w) in row[1..].iter().zip(&widths[1..]) {
            let _ = write!(line, "  {cell:>w$}");
        }
        let _ = writeln!(out, "{line}");
    }
    out
}

// --- JSON emission ----------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn jnum(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_owned()
    }
}

fn jstats(s: &OnlineStats) -> String {
    if s.is_empty() {
        return r#"{"count":0,"mean":null,"std":null,"min":null,"max":null}"#.to_owned();
    }
    format!(
        r#"{{"count":{},"mean":{},"std":{},"min":{},"max":{}}}"#,
        s.count(),
        jnum(s.mean()),
        jnum(s.std_dev()),
        jnum(s.min()),
        jnum(s.max())
    )
}

fn jmetrics(m: &Metrics) -> String {
    let counters: Vec<String> = m
        .counters()
        .map(|(k, v)| format!(r#""{}":{v}"#, json_escape(k)))
        .collect();
    let gauges: Vec<String> = m
        .gauges()
        .map(|(k, s)| format!(r#""{}":{}"#, json_escape(k), jstats(s)))
        .collect();
    let timers: Vec<String> = m
        .timers()
        .map(|(k, t)| {
            format!(
                r#""{}":{{"count":{},"total_secs":{},"stats":{}}}"#,
                json_escape(k),
                t.count(),
                jnum(t.total_secs()),
                jstats(t.stats())
            )
        })
        .collect();
    let histograms: Vec<String> = m
        .histograms()
        .map(|(k, h)| {
            if h.is_empty() {
                return format!(r#""{}":{{"count":0}}"#, json_escape(k));
            }
            format!(
                r#""{}":{{"count":{},"min":{},"p50":{},"p99":{},"p999":{},"max":{},"mean":{}}}"#,
                json_escape(k),
                h.count(),
                h.min(),
                h.p50(),
                h.p99(),
                h.p999(),
                h.max(),
                jnum(h.mean())
            )
        })
        .collect();
    format!(
        r#"{{"counters":{{{}}},"gauges":{{{}}},"timers":{{{}}},"histograms":{{{}}}}}"#,
        counters.join(","),
        gauges.join(","),
        timers.join(","),
        histograms.join(",")
    )
}

/// Serializes a report to the schema-stable `gridvm-bench/v1` JSON
/// document (see DESIGN.md §5 for the schema).
pub fn to_json(report: &ExperimentReport) -> String {
    let scenarios: Vec<String> = report
        .scenarios
        .iter()
        .map(|s| {
            let measurements: Vec<String> = s
                .measurements
                .iter()
                .map(|(name, stats)| format!(r#""{}":{}"#, json_escape(name), jstats(stats)))
                .collect();
            format!(
                r#"{{"label":"{}","samples":{},"paper":{},"measurements":{{{}}},"metrics":{}}}"#,
                json_escape(&s.scenario.label),
                s.scenario.samples,
                s.paper.map(jnum).unwrap_or_else(|| "null".to_owned()),
                measurements.join(","),
                jmetrics(&s.metrics)
            )
        })
        .collect();
    format!(
        "{{\"schema\":\"gridvm-bench/v1\",\"experiment\":\"{}\",\"seed\":{},\"threads\":{},\
         \"quick\":{},\"elapsed_secs\":{},\"scenarios\":[{}],\"metrics\":{}}}\n",
        json_escape(&report.title),
        report.seed,
        report.threads,
        report.quick,
        jnum(report.elapsed_secs),
        scenarios.join(","),
        jmetrics(&report.metrics)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn defaults_are_sane() {
        let o = Options::default();
        assert!(o.seed > 0);
        assert_eq!(o.samples_or(100), 100);
        assert_eq!(o.threads, 0);
        assert!(o.json.is_none());
    }

    #[test]
    fn quick_mode_shrinks_samples() {
        let o = Options {
            quick: true,
            ..Options::default()
        };
        assert_eq!(o.samples_or(100), 10);
        assert_eq!(o.samples_or(5), 2);
    }

    #[test]
    fn explicit_samples_win() {
        let o = Options {
            samples: 7,
            quick: true,
            ..Options::default()
        };
        assert_eq!(o.samples_or(100), 7);
    }

    #[test]
    fn parse_accepts_all_known_flags() {
        let o = Options::parse(args(&[
            "--seed",
            "9",
            "--samples",
            "3",
            "--threads",
            "4",
            "--json",
            "out.json",
            "--quick",
        ]))
        .expect("valid flags");
        assert_eq!(o.seed, 9);
        assert_eq!(o.samples, 3);
        assert_eq!(o.threads, 4);
        assert_eq!(o.json.as_deref(), Some(std::path::Path::new("out.json")));
        assert!(o.quick);
    }

    #[test]
    fn parse_rejects_unknown_flags_with_usage() {
        let e = Options::parse(args(&["--bogus"])).expect_err("unknown flag");
        assert!(e.0.contains("--bogus"));
        assert!(e.to_string().contains("--seed"), "usage lists known flags");
        assert!(e.to_string().contains("--threads"));
    }

    #[test]
    fn parse_rejects_malformed_values() {
        let e = Options::parse(args(&["--seed", "xyz"])).expect_err("bad value");
        assert!(e.0.contains("xyz"));
        let e = Options::parse(args(&["--samples"])).expect_err("missing value");
        assert!(e.0.contains("--samples"));
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["scenario", "mean", "std"],
            &[vec!["a".into(), "1.0".into(), "0.1".into()]],
            20,
        );
        assert!(t.contains("scenario"));
        assert!(t.contains("a"));
        assert!(t.lines().count() == 3);
    }

    struct Toy;

    impl Experiment for Toy {
        fn title(&self) -> &str {
            "toy"
        }

        fn scenarios(&self, opts: &Options) -> Vec<Scenario> {
            (0..3)
                .map(|i| Scenario::new(i, format!("case-{i}"), opts.samples_or(8)))
                .collect()
        }

        fn run_sample(
            &self,
            scenario: &Scenario,
            ctx: &SampleCtx,
            _opts: &Options,
        ) -> Vec<Measurement> {
            let mut rng = ctx.rng();
            gridvm_simcore::metrics::counter_add("toy.samples", 1);
            gridvm_simcore::metrics::histogram_record("toy.value_x1000", 1 + scenario.index as u64);
            vec![
                m("value", rng.next_f64() + scenario.index as f64),
                m("draws", 1.0),
            ]
        }

        fn paper_reference(&self, scenario: &Scenario) -> Option<f64> {
            (scenario.index == 0).then_some(0.5)
        }
    }

    #[test]
    fn toy_experiment_reports_per_scenario_stats() {
        let opts = Options {
            threads: 1,
            ..Options::default()
        };
        let report = run_experiment(&Toy, &opts);
        assert_eq!(report.scenarios.len(), 3);
        for (i, s) in report.scenarios.iter().enumerate() {
            let stats = s.stats("value").expect("measured");
            assert_eq!(stats.count(), 8);
            assert!(stats.mean() >= i as f64 && stats.mean() < i as f64 + 1.0);
            assert_eq!(s.metrics.counter("toy.samples"), 8);
        }
        assert_eq!(report.metrics.counter("toy.samples"), 24);
        assert_eq!(report.scenario("case-1").map(|s| s.scenario.index), Some(1));
    }

    #[test]
    fn thread_count_does_not_change_the_report() {
        let base = Options {
            threads: 1,
            ..Options::default()
        };
        let serial = run_experiment(&Toy, &base);
        for threads in [2, 8] {
            let par = run_experiment(
                &Toy,
                &Options {
                    threads,
                    ..base.clone()
                },
            );
            for (a, b) in serial.scenarios.iter().zip(&par.scenarios) {
                assert_eq!(a.measurements, b.measurements, "threads={threads}");
                assert_eq!(a.metrics, b.metrics, "threads={threads}");
            }
            assert_eq!(serial.metrics, par.metrics);
        }
    }

    #[test]
    fn json_report_is_schema_stable() {
        let opts = Options {
            threads: 1,
            samples: 2,
            ..Options::default()
        };
        let report = run_experiment(&Toy, &opts);
        let json = to_json(&report);
        for needle in [
            r#""schema":"gridvm-bench/v1""#,
            r#""experiment":"toy""#,
            r#""seed":20030517"#,
            r#""scenarios":["#,
            r#""label":"case-0""#,
            r#""paper":0.5"#,
            r#""measurements":{"#,
            r#""value":{"count":2,"mean":"#,
            r#""counters":{"toy.samples":2}"#,
            r#""histograms":{"toy.value_x1000":{"count":2,"min":1,"#,
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn rendered_report_mentions_trace_drops() {
        let opts = Options {
            threads: 1,
            samples: 1,
            ..Options::default()
        };
        let mut report = run_experiment(&Toy, &opts);
        let text = render_report(&report);
        assert!(!text.contains("WARNING"), "no drops, no warning");
        assert!(
            text.contains("hist toy.value_x1000:"),
            "report lists histograms"
        );
        report.metrics.counter_add("trace.dropped", 5);
        let text = render_report(&report);
        assert!(text.contains("WARNING") && text.contains("5"));
    }
}
