//! Shared experiment plumbing: CLI options and table formatting.

use std::fmt::Write as _;

/// Common options every reproduction binary accepts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Options {
    /// Master seed; every random stream derives from it.
    pub seed: u64,
    /// Number of measurement samples per scenario.
    pub samples: usize,
    /// Quick mode: shrink workloads for smoke runs.
    pub quick: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            seed: 20030517, // ICDCS 2003's opening day
            samples: 0,     // 0 = per-experiment default
            quick: false,
        }
    }
}

impl Options {
    /// Parses `--seed N`, `--samples N` and `--quick` from the
    /// process arguments, ignoring anything else.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed numeric values —
    /// these binaries are experiment entry points, so failing loudly
    /// beats running the wrong experiment.
    pub fn from_args() -> Self {
        let mut opts = Options::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--seed" => {
                    let v = args.next().expect("--seed needs a value");
                    opts.seed = v.parse().expect("--seed value must be a u64");
                }
                "--samples" => {
                    let v = args.next().expect("--samples needs a value");
                    opts.samples = v.parse().expect("--samples value must be a usize");
                }
                "--quick" => opts.quick = true,
                other => panic!("unknown option {other:?} (known: --seed --samples --quick)"),
            }
        }
        opts
    }

    /// The sample count to use given an experiment default.
    pub fn samples_or(&self, default: usize) -> usize {
        if self.samples > 0 {
            self.samples
        } else if self.quick {
            default.div_ceil(10).max(2)
        } else {
            default
        }
    }
}

/// Renders a header + aligned rows, left-aligning the first column
/// and right-aligning the rest.
pub fn render_table(headers: &[&str], rows: &[Vec<String>], first_width: usize) -> String {
    let mut out = String::new();
    let mut line = format!("{:<width$}", headers[0], width = first_width);
    for h in &headers[1..] {
        let _ = write!(line, " {h:>12}");
    }
    let _ = writeln!(out, "{line}");
    let _ = writeln!(out, "{}", "-".repeat(line.len()));
    for row in rows {
        let mut line = format!("{:<width$}", row[0], width = first_width);
        for cell in &row[1..] {
            let _ = write!(line, " {cell:>12}");
        }
        let _ = writeln!(out, "{line}");
    }
    out
}

/// A one-line experiment banner.
pub fn banner(title: &str, opts: &Options) {
    println!("=== {title} ===");
    println!(
        "seed={} samples={} quick={}",
        opts.seed,
        if opts.samples == 0 {
            "default".to_owned()
        } else {
            opts.samples.to_string()
        },
        opts.quick
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let o = Options::default();
        assert!(o.seed > 0);
        assert_eq!(o.samples_or(100), 100);
    }

    #[test]
    fn quick_mode_shrinks_samples() {
        let o = Options {
            quick: true,
            ..Options::default()
        };
        assert_eq!(o.samples_or(100), 10);
        assert_eq!(o.samples_or(5), 2);
    }

    #[test]
    fn explicit_samples_win() {
        let o = Options {
            samples: 7,
            quick: true,
            ..Options::default()
        };
        assert_eq!(o.samples_or(100), 7);
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["scenario", "mean", "std"],
            &[vec!["a".into(), "1.0".into(), "0.1".into()]],
            20,
        );
        assert!(t.contains("scenario"));
        assert!(t.contains("a"));
        assert!(t.lines().count() == 3);
    }
}
