//! The regional handoff world: the bench workload behind the
//! `shard: regional per-pair windows` scenario.
//!
//! One migrating batch job ("token") per region of a
//! [`SiteTopology::regional_vo`] mesh. A token bursts through a run of
//! local work steps at its current site, then hands off to the site's
//! metro partner and goes idle there until the message lands — so at
//! any instant one site per region is active and the rest are silent.
//! That is exactly the shape wide-area VOs exhibit (compute bursts
//! punctuated by transfers) and exactly where the per-(src,dst)
//! lookahead protocol earns its keep: a global-lookahead synchronizer
//! barriers every `min link latency` (5 ms metro), while per-pair
//! horizons let each active site run to the nearest *other region* —
//! 20–45 ms of WAN away — cutting `shard.windows` several-fold at a
//! bit-identical history. Both protocols are driven from the same
//! build so the bench can assert digest equality while comparing
//! barrier counts.

use gridvm_simcore::engine::{Engine, Event};
use gridvm_simcore::metrics::Counter;
use gridvm_simcore::shard::{ShardWorld, ShardedSim, SiteId, SiteState};
use gridvm_simcore::time::{SimDuration, SimTime};
use gridvm_vnet::sites::SiteTopology;

/// Work steps executed across all tokens (hot path).
static HANDOFF_STEPS: Counter = Counter::new("handoff.steps");
/// Completed handoff legs (burst + transfer to the metro partner).
static HANDOFF_LEGS: Counter = Counter::new("handoff.legs");

/// Shape of one regional handoff run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HandoffConfig {
    /// Regions in the [`SiteTopology::regional_vo`] mesh; each region
    /// holds two metro sites and one token.
    pub regions: u32,
    /// Local work steps a token bursts through per leg.
    pub burst_steps: u32,
    /// Spacing between a token's burst steps.
    pub step_gap: SimDuration,
    /// Handoffs each token performs before retiring.
    pub legs: u32,
    /// Drive the synchronizer from the per-(src,dst) lookahead matrix
    /// instead of the global minimum link latency.
    pub per_pair_lookahead: bool,
}

impl HandoffConfig {
    /// The reference shape: 6 regions, 24-step bursts at 1 ms, 64
    /// legs — bursts span ~24 ms against a 5 ms global lookahead, so
    /// the per-pair protocol has several windows per burst to merge.
    pub fn reference() -> Self {
        HandoffConfig {
            regions: 6,
            burst_steps: 24,
            step_gap: SimDuration::from_millis(1),
            legs: 64,
            per_pair_lookahead: true,
        }
    }
}

/// A token handed to the metro partner: the cross-shard message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HandoffMsg {
    /// Token id (the region that owns it).
    pub token: u64,
    /// Handoffs still owed after this one.
    pub legs_left: u32,
}

/// One metro site of the handoff world.
#[derive(Debug)]
pub struct HandoffSite {
    partner: SiteId,
    partner_latency: SimDuration,
    step_gap: SimDuration,
    burst_steps: u32,
    /// Fold of every step's work product (digest-comparable).
    pub checksum: u64,
    /// Legs completed at this site.
    pub legs_done: u64,
}

impl ShardWorld for HandoffSite {
    type Msg = HandoffMsg;

    fn deliver(msg: HandoffMsg, site: &mut SiteState<Self>, en: &mut Engine<SiteState<Self>>) {
        let steps = u64::from(site.world.burst_steps);
        burst(
            [(msg.token << 32) | steps, u64::from(msg.legs_left)],
            site,
            en,
        );
    }

    fn encode_msg(msg: HandoffMsg) -> Result<[u64; 2], HandoffMsg> {
        Ok([msg.token, u64::from(msg.legs_left)])
    }

    fn decode_msg(words: [u64; 2]) -> HandoffMsg {
        HandoffMsg {
            token: words[0],
            legs_left: words[1] as u32,
        }
    }
}

/// One token work step; `[token << 32 | steps_left, legs_left]` ride
/// in the event's inline argument words.
fn burst(
    args: [u64; 2],
    site: &mut SiteState<HandoffSite>,
    en: &mut Engine<SiteState<HandoffSite>>,
) {
    let [word, legs_left] = args;
    let (token, steps_left) = (word >> 32, word & 0xffff_ffff);
    HANDOFF_STEPS.add(1);
    let w = &mut site.world;
    w.checksum ^= (token.rotate_left((steps_left % 63) as u32)).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ en.now().as_nanos();
    if steps_left > 0 {
        let gap = w.step_gap;
        en.schedule_event_in(
            gap,
            Event::Arg2([(token << 32) | (steps_left - 1), legs_left], burst),
        );
        return;
    }
    w.legs_done += 1;
    HANDOFF_LEGS.add(1);
    if legs_left > 0 {
        let (partner, at) = (w.partner, en.now() + w.partner_latency);
        site.send(
            partner,
            at,
            HandoffMsg {
                token,
                legs_left: (legs_left - 1) as u32,
            },
        );
    } else {
        site.trace
            .record(en.now(), "handoff", format!("token {token} retired"));
    }
}

/// Builds the handoff world over `regional_vo(cfg.regions, 2)`: one
/// token per region starting its first burst at a per-region stagger,
/// handing off between the region's two metro sites until its legs
/// run out. Configure shards/threads on the returned sim and run it;
/// compare `windows()` across the two protocol settings at equal
/// trace digests and checksums.
///
/// # Panics
///
/// Panics when `cfg.regions` is zero.
pub fn build_handoff(cfg: &HandoffConfig) -> ShardedSim<HandoffSite> {
    assert!(cfg.regions > 0, "a handoff world needs at least one region");
    let topo = SiteTopology::regional_vo(cfg.regions, 2);
    let n = topo.sites() as u32;
    let lookahead = topo.lookahead().expect("regional_vo meshes");
    let mut sim = ShardedSim::new(
        lookahead,
        (0..n).map(|i| {
            let partner = SiteId(i ^ 1);
            HandoffSite {
                partner,
                partner_latency: topo.latency(SiteId(i), partner).expect("metro pair"),
                step_gap: cfg.step_gap,
                burst_steps: cfg.burst_steps,
                checksum: 0,
                legs_done: 0,
            }
        }),
    );
    if cfg.per_pair_lookahead {
        sim = sim.per_pair_lookahead(topo.lookahead_matrix());
    }
    sim = sim.outbox_capacity(4);
    for r in 0..cfg.regions {
        sim.with_site((2 * r) as usize, |site, en| {
            let steps = u64::from(site.world.burst_steps);
            // Stagger region starts so same-instant pileups don't mask
            // ordering differences between the protocols.
            let start = SimTime::ZERO + SimDuration::from_micros(137 * u64::from(r));
            en.schedule_event_at(
                start,
                Event::Arg2([(u64::from(r) << 32) | steps, u64::from(cfg.legs)], burst),
            );
        });
    }
    sim
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridvm_simcore::metrics;

    fn run(cfg: &HandoffConfig, shards: usize, threads: usize) -> (u64, Vec<u64>, u64, u64, u64) {
        let mut sim = build_handoff(cfg).shards(shards).threads(threads);
        metrics::reset();
        sim.run();
        metrics::reset();
        let checksums = (0..cfg.regions as usize * 2)
            .map(|i| sim.with_site(i, |s, _| s.world.checksum))
            .collect();
        let boxed = sim.merged_metrics().counter("sim.events_boxed");
        (
            sim.trace_digest(),
            checksums,
            sim.messages(),
            sim.windows(),
            boxed,
        )
    }

    #[test]
    fn tokens_complete_their_legs_and_histories_match_across_protocols() {
        let cfg = HandoffConfig {
            legs: 12,
            ..HandoffConfig::reference()
        };
        let global = HandoffConfig {
            per_pair_lookahead: false,
            ..cfg
        };
        let (digest, checksums, messages, paired_windows, boxed) = run(&cfg, 4, 2);
        let (gdigest, gchecksums, gmessages, global_windows, gboxed) = run(&global, 4, 2);
        assert_eq!(digest, gdigest, "protocols diverged");
        assert_eq!(checksums, gchecksums);
        assert_eq!(messages, gmessages);
        assert_eq!(messages, u64::from(cfg.regions) * u64::from(cfg.legs));
        assert_eq!((boxed, gboxed), (0, 0), "handoffs must ride inline");
        assert!(
            paired_windows * 3 <= global_windows,
            "expected >= 3x fewer windows, got {paired_windows} vs {global_windows}"
        );
    }

    #[test]
    fn handoff_world_is_packing_invariant() {
        let cfg = HandoffConfig {
            legs: 8,
            ..HandoffConfig::reference()
        };
        let want = run(&cfg, 1, 1);
        for (shards, threads) in [(2, 1), (4, 4), (12, 3)] {
            assert_eq!(run(&cfg, shards, threads), want, "shards={shards}");
        }
    }
}
