//! **Extension: VO macro-scale** — placement policies raced on a
//! hundreds-of-sites virtual organization at 10⁵–10⁶ sessions
//! (Section 5's "wide-area grid of VM hosts" argument, stress-tested
//! for memory-bounded observability).
//!
//! Each scenario runs the same diurnal + flash-crowd workload on the
//! same seeded regional topology and changes only where hopping
//! sessions go ([`Placement`]). All per-session observations land in
//! fixed-bucket log-scale histograms and a sampled trace ring, so
//! tracked state stays O(sites), never O(sessions): the epilogue
//! prints `peak_rss_mib=` from the kernel's high-water mark and CI
//! holds it under a ceiling. Reported per policy: p50/p99/p999
//! session slowdown (congestion stretch over the uncongested ideal),
//! VO makespan, and simulated events per wall second.

use gridvm_bench::harness::{
    m, run_main, Experiment, ExperimentReport, Measurement, Options, SampleCtx, Scenario,
};
use gridvm_core::multisite::{build_vo_scale, Placement, VoScaleConfig};
use gridvm_simcore::metrics;

/// Full-size run: 24 regions × 8 sites, well past the 10⁵-session
/// acceptance floor. Quick mode shrinks to a CI-speed smoke that
/// keeps the same diurnal/burst shape.
fn config(placement: Placement, seed: u64, quick: bool) -> VoScaleConfig {
    let reference = VoScaleConfig::reference();
    if quick {
        VoScaleConfig {
            sessions: 24_000,
            placement,
            seed,
            ..reference
        }
    } else {
        VoScaleConfig {
            regions: 24,
            sites_per_region: 8,
            sessions: 200_000,
            placement,
            seed,
            ..reference
        }
    }
}

/// Kernel-reported peak resident set (VmHWM) in MiB, if the platform
/// exposes it. Host-dependent like every wall-clock figure here; the
/// point is the *bound*, not the exact value.
fn peak_rss_mib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb.div_ceil(1024))
}

struct VoScale;

impl Experiment for VoScale {
    fn title(&self) -> &str {
        "Extension: placement policies at VO macro-scale (bounded observability)"
    }

    fn scenarios(&self, opts: &Options) -> Vec<Scenario> {
        Placement::ALL
            .iter()
            .enumerate()
            .map(|(i, p)| Scenario::new(i, format!("placement: {}", p.label()), opts.samples_or(1)))
            .collect()
    }

    fn run_sample(&self, scenario: &Scenario, ctx: &SampleCtx, opts: &Options) -> Vec<Measurement> {
        let placement = Placement::ALL[scenario.index];
        // Same master seed for every policy: the race is on identical
        // workloads, so only the placement decision differs.
        let cfg = config(placement, opts.seed ^ ctx.sample as u64, opts.quick);
        let mut sim = build_vo_scale(&cfg).shards(8).threads(1);
        let started = std::time::Instant::now();
        sim.run();
        let wall = started.elapsed();
        let merged = sim.merged_metrics();

        let completed = merged.counter("vo.sessions_completed");
        assert_eq!(completed, cfg.sessions, "every session must complete");
        assert!(
            merged.tracked_entries() < 64,
            "metric keyspace must stay O(1), not O(sessions): {} entries",
            merged.tracked_entries()
        );
        let ring_bound = cfg.sites() as usize * cfg.trace_capacity;
        assert!(
            sim.retained_trace_entries() <= ring_bound,
            "sampled trace rings exceeded their bound"
        );
        assert_eq!(
            merged.counter("trace.sampled") + merged.counter("trace.dropped"),
            cfg.sessions,
            "every completion faced exactly one sampling decision"
        );

        let slowdown = merged
            .histogram("vo.slowdown_x1000")
            .expect("slowdown histogram");
        let complete = merged
            .histogram("vo.complete_us")
            .expect("completion-time histogram");
        // Surface the histograms in the per-scenario metrics block of
        // the JSON report alongside the counters.
        metrics::merge_current(&merged);
        vec![
            m("p50_slowdown", slowdown.p50() as f64 / 1000.0),
            m("p99_slowdown", slowdown.p99() as f64 / 1000.0),
            m("p999_slowdown", slowdown.p999() as f64 / 1000.0),
            m("makespan_ms", complete.max() as f64 / 1000.0),
            m("completed", completed as f64),
            m(
                "events_per_sec",
                sim.total_events() as f64 / wall.as_secs_f64().max(1e-9),
            ),
        ]
    }

    fn epilogue(&self, report: &ExperimentReport, opts: &Options) -> Option<String> {
        let cfg = config(Placement::Uniform, opts.seed, opts.quick);
        let best = report
            .scenarios
            .iter()
            .filter_map(|s| {
                s.stats("p99_slowdown")
                    .map(|st| (s.scenario.label.clone(), st.mean()))
            })
            .min_by(|a, b| a.1.total_cmp(&b.1));
        let mut out = format!(
            "{} sessions over {} sites per run; tracked metric entries and trace rings \
             stay O(sites) regardless of session count\n",
            cfg.sessions,
            cfg.sites(),
        );
        if let Some((label, p99)) = best {
            out.push_str(&format!(
                "lowest p99 slowdown: {label} at {p99:.2}x; sticky (no hops) bounds the \
                 migration-free baseline\n"
            ));
        }
        out.push_str(&format!(
            "peak_rss_mib={}",
            peak_rss_mib().unwrap_or_default()
        ));
        Some(out)
    }
}

fn main() {
    run_main(&VoScale);
}
