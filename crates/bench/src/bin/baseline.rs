//! Substrate performance baseline: wall-clock throughput of the
//! simulation hot paths (event queue, engine loop, LRU caches, proxy
//! churn, metrics counters).
//!
//! Unlike the reproduction binaries, the *measurements* here are host
//! wall-clock rates (operations per second), so values vary by
//! machine; the workloads themselves are still seeded and
//! deterministic. Run with `--json BENCH_simcore.json` to record a
//! perf trajectory point in the `gridvm-bench/v1` schema — the
//! committed `BENCH_simcore.json` at the repo root is the first such
//! point, and future substrate PRs are expected to re-run this binary
//! and compare.
//!
//! ```text
//! cargo run --release -p gridvm-bench --bin baseline -- \
//!     --threads 1 --json BENCH_simcore.json
//! ```
//!
//! Use `--threads 1` for recorded baselines: replications run
//! back-to-back instead of contending for cores mid-measurement.

use std::time::Instant;

use gridvm_bench::harness::{self, m, Experiment, Measurement, Options, SampleCtx, Scenario};
use gridvm_bench::regional::{build_handoff, HandoffConfig};
use gridvm_core::multisite::{build_vo, VoConfig};
use gridvm_simcore::engine::Engine;
use gridvm_simcore::event::EventQueue;
use gridvm_simcore::hist::Histogram;
use gridvm_simcore::lru::LruSet;
use gridvm_simcore::metrics::Counter;
use gridvm_simcore::slot::SlotMap;
use gridvm_simcore::time::{SimDuration, SimTime};
use gridvm_storage::block::BlockAddr;
use gridvm_storage::cache::BufferCache;
use gridvm_vfs::fs::FileHandle;
use gridvm_vfs::protocol::NFS_BLOCK;
use gridvm_vfs::proxy::{ProxyConfig, VfsProxy};
use gridvm_vnet::overlay::{NodeId, Overlay};

struct Baseline;

/// Scenario labels; `run_sample` dispatches on index.
const SCENARIOS: [&str; 12] = [
    "engine: chained events",
    "queue: push+pop random times",
    "queue: push/cancel/drain mix",
    "lru: touch-or-insert churn",
    "proxy: block churn",
    "overlay: routed packet churn",
    "cache: buffer-cache insert churn",
    "slot: insert/remove/get churn",
    "shard: cross-shard mailbox churn",
    "shard: 4-site speedup 1 vs 4 shards",
    "metrics: histogram record+merge",
    "shard: regional per-pair windows",
];

/// Events/operations per sample at full size (quick mode divides by
/// 10).
const FULL_OPS: u64 = 100_000;

impl Baseline {
    fn ops(&self, opts: &Options) -> u64 {
        if opts.quick {
            FULL_OPS / 10
        } else {
            FULL_OPS
        }
    }
}

impl Experiment for Baseline {
    fn title(&self) -> &str {
        "substrate perf baseline (wall-clock, machine-dependent)"
    }

    fn scenarios(&self, opts: &Options) -> Vec<Scenario> {
        SCENARIOS
            .iter()
            .enumerate()
            .map(|(i, label)| Scenario::new(i, *label, opts.samples_or(5)))
            .collect()
    }

    fn run_sample(&self, scenario: &Scenario, ctx: &SampleCtx, opts: &Options) -> Vec<Measurement> {
        // Counted through the pre-resolved fast path so the committed
        // baseline exercises it end-to-end.
        BASELINE_SAMPLES.add(1);
        let n = self.ops(opts);
        let mut rng = ctx.rng();
        let (ops, elapsed) = match scenario.index {
            0 => {
                // The Engine::run loop: one chained event at a time,
                // the dominant shape of every reproduction binary.
                // The target threads through the event's inline word,
                // so the loop never touches the allocator.
                let started = Instant::now();
                let mut en: Engine<u64> = Engine::new();
                let mut world = 0u64;
                en.schedule_arg_now(n, chain);
                en.run(&mut world);
                assert_eq!(world, n);
                (n, started.elapsed())
            }
            1 => {
                let times: Vec<SimTime> = (0..n)
                    .map(|_| SimTime::from_nanos(rng.next_u64() % 1_000_000))
                    .collect();
                let started = Instant::now();
                let mut q = EventQueue::new();
                for (i, t) in times.iter().enumerate() {
                    q.push(*t, i);
                }
                while q.pop().is_some() {}
                (2 * n, started.elapsed())
            }
            2 => {
                let times: Vec<SimTime> = (0..n)
                    .map(|_| SimTime::from_nanos(rng.next_u64() % 1_000_000))
                    .collect();
                let started = Instant::now();
                let mut q = EventQueue::new();
                let ids: Vec<_> = times
                    .iter()
                    .enumerate()
                    .map(|(i, t)| q.push(*t, i))
                    .collect();
                for id in ids.iter().step_by(3) {
                    q.cancel(*id);
                }
                while q.pop().is_some() {}
                (2 * n + n / 3, started.elapsed())
            }
            3 => {
                let keys: Vec<u64> = (0..n).map(|_| rng.next_u64() % 8192).collect();
                let started = Instant::now();
                let mut lru = LruSet::new(4096);
                for k in &keys {
                    if !lru.touch(k) {
                        lru.insert(*k);
                    }
                }
                (n, started.elapsed())
            }
            4 => {
                let churn = n / 10; // proxy ops are block-granular and pricier
                let bs = NFS_BLOCK.as_u64();
                let offsets: Vec<u64> = (0..churn).map(|_| (rng.next_u64() % 2048) * bs).collect();
                let cfg = ProxyConfig {
                    cache_blocks: 1024,
                    prefetch_depth: 0,
                    ..ProxyConfig::default()
                };
                let started = Instant::now();
                let mut proxy = VfsProxy::new(cfg);
                let fh = FileHandle(1);
                for o in &offsets {
                    if proxy.try_read_hit(fh, *o, bs, SimTime::ZERO).is_none() {
                        let _ = proxy.note_read_miss(fh, *o, bs, SimTime::ZERO);
                    }
                }
                (churn, started.elapsed())
            }
            5 => {
                // Per-packet route lookups against a probed mesh, with
                // periodic measurement churn forcing cache
                // invalidation — the shape of the overlay ablation
                // runs.
                let mut ov = Overlay::new();
                let nodes: Vec<NodeId> = (0..24).map(|_| ov.add_node()).collect();
                ov.probe_mesh(SimTime::ZERO, |a, b| {
                    Some(SimDuration::from_micros(
                        200 + (u64::from(a.0) * 31 + u64::from(b.0) * 17) % 800,
                    ))
                });
                let pairs: Vec<(NodeId, NodeId)> = (0..n)
                    .map(|_| {
                        let a = nodes[(rng.next_u64() % 24) as usize];
                        let b = nodes[(rng.next_u64() % 24) as usize];
                        (a, b)
                    })
                    .collect();
                let churn: Vec<(NodeId, NodeId, u64)> = (0..n / 4096 + 1)
                    .map(|_| {
                        let a = nodes[(rng.next_u64() % 24) as usize];
                        let b = nodes[(rng.next_u64() % 24) as usize];
                        (a, b, 200 + rng.next_u64() % 800)
                    })
                    .collect();
                let started = Instant::now();
                let mut latency = SimDuration::ZERO;
                for (i, (a, b)) in pairs.iter().enumerate() {
                    if i % 4096 == 0 {
                        let (x, y, us) = churn[i / 4096];
                        if x != y {
                            ov.update_measurement(x, y, SimDuration::from_micros(us));
                        }
                    }
                    let r = ov.route_ref(*a, *b).expect("full mesh is connected");
                    latency += r.latency;
                }
                assert!(latency > SimDuration::ZERO);
                (n, started.elapsed())
            }
            6 => {
                // The buffer cache under VM-disk block churn:
                // touch-or-insert over a working set twice the
                // capacity, the shape `ablation_buffer_cache` sweeps.
                let addrs: Vec<BlockAddr> =
                    (0..n).map(|_| BlockAddr(rng.next_u64() % 8192)).collect();
                let started = Instant::now();
                let mut cache = BufferCache::new(4096);
                for a in &addrs {
                    if !cache.touch(*a) {
                        cache.insert(*a);
                    }
                }
                (n, started.elapsed())
            }
            7 => {
                // The slot layer itself: insert/remove/get churn over
                // a live set of ~1k entries — the per-entity state
                // shape under vnet/vfs/sched/storage hot paths.
                let ops: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
                let started = Instant::now();
                let mut map: SlotMap<(), u64> = SlotMap::new();
                let mut live: Vec<gridvm_simcore::slot::Handle<()>> = Vec::new();
                let mut sum = 0u64;
                for op in &ops {
                    match (op % 4, live.is_empty()) {
                        (0, _) | (_, true) => live.push(map.insert(*op)),
                        (1, false) => {
                            let h = live.swap_remove((op >> 2) as usize % live.len());
                            sum ^= map.remove(h).expect("live handle");
                        }
                        (_, false) => {
                            let h = live[(op >> 2) as usize % live.len()];
                            sum ^= *map.get(h).expect("live handle");
                        }
                    }
                }
                assert!(sum != 1, "keep the loop observable");
                (n, started.elapsed())
            }
            8 => {
                // The conservative synchronizer under a hop-heavy VO:
                // 6 sites trading sessions at a 40% hop rate, run at 4
                // shards on 1 worker thread — mailbox drain, window
                // accounting and barrier turnover dominate, which is
                // exactly the overhead this scenario gates.
                let cfg = VoConfig {
                    sites: 6,
                    sessions_per_site: 8,
                    steps_per_session: (n / 48).max(4) as u32,
                    hop_per_mille: 400,
                    crash_per_mille: 10,
                    seed: rng.next_u64(),
                    ..VoConfig::paper_vo()
                };
                let started = Instant::now();
                let mut sim = build_vo(&cfg).shards(4).threads(1);
                sim.run();
                assert!(sim.messages() > 0, "hops must cross shard boundaries");
                (sim.total_events(), started.elapsed())
            }
            9 => {
                // The acceptance scenario: a 4-site VO with >=100k
                // events per site at full size, executed at 1 shard
                // and again at 4 shards. The digests must agree
                // bit-for-bit; the sample records the 4-shard
                // throughput plus two speedup measurements — the
                // honest wall-clock ratio on this machine and the
                // machine-independent critical-path model ratio
                // (sum/max of per-shard window work).
                let cfg = VoConfig {
                    sites: 4,
                    sessions_per_site: 50,
                    steps_per_session: (n / 50).max(4) as u32,
                    hop_per_mille: 30,
                    crash_per_mille: 10,
                    work_draws: 16,
                    seed: rng.next_u64(),
                    ..VoConfig::paper_vo()
                };
                let started1 = Instant::now();
                let mut one = build_vo(&cfg).shards(1).threads(1);
                one.run();
                let wall1 = started1.elapsed();
                let started4 = Instant::now();
                let mut four = build_vo(&cfg).shards(4).threads(0);
                four.run();
                let wall4 = started4.elapsed();
                assert_eq!(
                    one.trace_digest(),
                    four.trace_digest(),
                    "shard count changed the history"
                );
                assert_eq!(one.total_events(), four.total_events());
                let secs4 = wall4.as_secs_f64().max(1e-9);
                return vec![
                    m("ops_per_sec", four.total_events() as f64 / secs4),
                    m("wall_us", secs4 * 1e6),
                    m("speedup_wall_x", wall1.as_secs_f64().max(1e-9) / secs4),
                    m("speedup_model_x", four.model_speedup()),
                ];
            }
            10 => {
                // The streaming-metrics hot path at macro scale:
                // values land in per-shard log-scale histograms which
                // then roll up into one VO-level summary — the shape
                // of every ext_vo_scale completion record. Gated so
                // the record path stays O(1) and the rollup stays an
                // element-wise integer add.
                let values: Vec<u64> = (0..n).map(|_| 1 + rng.next_u64() % 1_000_000).collect();
                let started = Instant::now();
                let mut shards: Vec<Histogram> = (0..8).map(|_| Histogram::default()).collect();
                for (i, v) in values.iter().enumerate() {
                    shards[i & 7].record(*v);
                }
                let mut merged = Histogram::default();
                for s in &shards {
                    merged.merge(s);
                }
                assert_eq!(merged.count(), n);
                assert!(merged.p999() >= merged.p50());
                (n, started.elapsed())
            }
            11 => {
                // The per-pair window payoff on a regional VO: the
                // bursty handoff workload run under the global
                // synchronizer and again under the per-pair matrix.
                // Histories must match bit-for-bit; the sample records
                // the per-pair throughput plus the barrier-window
                // reduction, which the bench gate holds at >= 3x.
                let cfg = HandoffConfig {
                    legs: (n / (6 * 24)).max(8) as u32,
                    ..HandoffConfig::reference()
                };
                let mut global = build_handoff(&HandoffConfig {
                    per_pair_lookahead: false,
                    ..cfg
                })
                .shards(4)
                .threads(1);
                global.run();
                let started = Instant::now();
                let mut paired = build_handoff(&cfg).shards(4).threads(1);
                paired.run();
                let wall = started.elapsed();
                assert_eq!(
                    global.trace_digest(),
                    paired.trace_digest(),
                    "per-pair lookahead changed the history"
                );
                assert_eq!(global.total_events(), paired.total_events());
                assert!(
                    paired.windows() * 3 <= global.windows(),
                    "window reduction regressed: {} vs {}",
                    paired.windows(),
                    global.windows()
                );
                let secs = wall.as_secs_f64().max(1e-9);
                return vec![
                    m("ops_per_sec", paired.total_events() as f64 / secs),
                    m("wall_us", secs * 1e6),
                    m(
                        "window_reduction_x",
                        global.windows() as f64 / paired.windows().max(1) as f64,
                    ),
                ];
            }
            other => unreachable!("unknown scenario {other}"),
        };
        let secs = elapsed.as_secs_f64().max(1e-9);
        vec![
            m("ops_per_sec", ops as f64 / secs),
            m("wall_us", secs * 1e6),
        ]
    }

    fn epilogue(&self, report: &harness::ExperimentReport, _opts: &Options) -> Option<String> {
        let engine = report.scenario(SCENARIOS[0])?;
        let mut line = format!(
            "headline: event throughput {:.0} events/sec (engine chained-event loop, mean of {} samples)",
            engine.mean("ops_per_sec"),
            engine.stats("ops_per_sec").map(|s| s.count()).unwrap_or(0),
        );
        if let Some(shard) = report.scenario(SCENARIOS[9]) {
            line.push_str(&format!(
                "\nshard speedup at 4 shards: {:.2}x wall on this machine, {:.2}x critical-path model",
                shard.mean("speedup_wall_x"),
                shard.mean("speedup_model_x"),
            ));
        }
        if let Some(regional) = report.scenario(SCENARIOS[11]) {
            line.push_str(&format!(
                "\nper-pair lookahead on regional VO: {:.1}x fewer barrier windows at identical history",
                regional.mean("window_reduction_x"),
            ));
        }
        Some(line)
    }
}

/// One self-rescheduling simulation event; the remaining-target count
/// rides in the event's inline argument word (no per-event boxing).
fn chain(target: u64, w: &mut u64, en: &mut Engine<u64>) {
    *w += 1;
    if *w < target {
        en.schedule_arg_in(SimDuration::from_micros(10), target, chain);
    }
}

/// Samples executed, recorded via the metrics counter fast path.
static BASELINE_SAMPLES: Counter = Counter::new("baseline.samples");

fn main() {
    harness::run_main(&Baseline);
}
