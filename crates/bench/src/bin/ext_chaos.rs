//! **Extension: chaos** — session survival under injected faults
//! (Section 3.1's fault-tolerance argument, measured).
//!
//! Sweeps the rate of a seeded random fault process (host crashes
//! plus background link partitions and NFS timeouts) over a
//! four-node cluster and reports, per intensity: the fraction of
//! sessions that complete, their mean makespan, and the
//! suspend–transfer–resume migrations performed per session. The
//! paper claims whole-environment recovery makes failures a
//! performance problem rather than a correctness problem — completed
//! sessions should degrade gracefully in makespan while the
//! completion fraction stays high until crashes outpace the cluster.

use gridvm_bench::harness::{
    m, run_main, Experiment, ExperimentReport, Measurement, Options, SampleCtx, Scenario,
};
use gridvm_core::recovery::{run_resilient_session, Cluster, RecoveryConfig};
use gridvm_core::session::SessionRequest;
use gridvm_core::startup::{StartupConfig, StartupMode, StateAccess};
use gridvm_simcore::fault::{FaultKind, FaultPlan, FaultProcess};
use gridvm_simcore::rng::SimRng;
use gridvm_simcore::time::{SimDuration, SimTime};
use gridvm_simcore::trace::TraceLog;
use gridvm_simcore::units::CpuWork;
use gridvm_vmm::machine::DiskMode;
use gridvm_workloads::AppProfile;

const HOSTS: usize = 4;

/// Per-scenario fault intensity: mean time between host crashes
/// (`None` = fault-free baseline).
struct ChaosSweep {
    crash_mtbf_secs: [Option<u64>; 4],
}

fn request() -> SessionRequest {
    SessionRequest {
        user: "userX".into(),
        image: "rh72".into(),
        min_cores: 2,
        startup: StartupConfig::table2(
            StartupMode::Restore,
            DiskMode::NonPersistent,
            StateAccess::DiskFs,
        ),
        // ~2 minutes of guest work, several checkpoint intervals.
        app: AppProfile::new("chaos-app", CpuWork::from_cycles(96_000_000_000)),
    }
}

fn plan_for(seed: u64, mtbf: Option<u64>) -> FaultPlan {
    let Some(mtbf) = mtbf else {
        return FaultPlan::new();
    };
    let nodes: Vec<String> = (0..HOSTS).map(|i| format!("node{i}")).collect();
    let horizon = SimDuration::from_secs(3600);
    FaultPlan::seeded(
        seed,
        horizon,
        &[
            FaultProcess {
                kind: FaultKind::HostCrash,
                mean_interval: SimDuration::from_secs(mtbf),
                targets: nodes.clone(),
            },
            FaultProcess {
                kind: FaultKind::LinkPartition {
                    heal_after: SimDuration::from_secs(20),
                },
                mean_interval: SimDuration::from_secs(mtbf * 2),
                targets: nodes.clone(),
            },
            FaultProcess {
                kind: FaultKind::NfsTimeout,
                mean_interval: SimDuration::from_secs(mtbf * 2),
                targets: vec!["nfs".to_owned()],
            },
        ],
    )
}

impl Experiment for ChaosSweep {
    fn title(&self) -> &str {
        "Extension: completed sessions and makespan vs fault rate"
    }

    fn scenarios(&self, opts: &Options) -> Vec<Scenario> {
        let samples = if opts.quick { 1 } else { 3 };
        self.crash_mtbf_secs
            .iter()
            .enumerate()
            .map(|(i, mtbf)| {
                let label = match mtbf {
                    None => "fault-free".to_owned(),
                    Some(s) => format!("crash MTBF {s}s"),
                };
                Scenario::new(i, label, samples)
            })
            .collect()
    }

    fn run_sample(&self, scenario: &Scenario, ctx: &SampleCtx, opts: &Options) -> Vec<Measurement> {
        let mtbf = self.crash_mtbf_secs[scenario.index];
        let sessions = if opts.quick { 4 } else { 10 };
        let mut completed = 0usize;
        let mut migrations = 0usize;
        let mut total_secs = 0.0f64;
        for s in 0..sessions {
            let seed = ctx.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(s as u64 + 1));
            let plan = plan_for(seed, mtbf);
            let mut cluster = Cluster::paper_lan(HOSTS, "rh72", "userX");
            let mut rng = SimRng::seed_from(seed);
            // Same 16k-entry bound as `TraceLog::default()`, but the
            // ring is reserved up front: sessions under measurement
            // never regrow the buffer mid-run.
            let mut trace = TraceLog::preallocated(16_384);
            match run_resilient_session(
                &mut cluster,
                &request(),
                &RecoveryConfig::default(),
                &plan,
                &mut rng,
                &mut trace,
            ) {
                Ok(report) => {
                    completed += 1;
                    migrations += report.migrations();
                    total_secs += report.total.as_secs_f64();
                }
                Err(_) => {
                    // counted via chaos.sessions_failed
                }
            }
            // Every session ran to a verdict by a bounded time.
            assert!(
                trace
                    .entries()
                    .all(|e| e.time < SimTime::ZERO + SimDuration::from_secs(7200)),
                "runaway session"
            );
        }
        let mean_total = if completed > 0 {
            total_secs / completed as f64
        } else {
            0.0
        };
        vec![
            m("completed_frac", completed as f64 / sessions as f64),
            m("mean_total_s", mean_total),
            m(
                "migrations_per_session",
                migrations as f64 / sessions as f64,
            ),
        ]
    }

    fn epilogue(&self, report: &ExperimentReport, _opts: &Options) -> Option<String> {
        Some(format!(
            "sessions: {} completed, {} failed; {} migrations, {} host crashes injected\n\
             expected: completion fraction decays and makespan grows as crash MTBF shrinks; \
             fault-free rows show zero migrations",
            report.metrics.counter("chaos.sessions_completed"),
            report.metrics.counter("chaos.sessions_failed"),
            report.metrics.counter("recovery.migrations"),
            report.metrics.counter("fault.host_crash"),
        ))
    }
}

fn main() {
    run_main(&ChaosSweep {
        crash_mtbf_secs: [None, Some(300), Some(90), Some(30)],
    });
}
