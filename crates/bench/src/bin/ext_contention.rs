//! **Extension E4** — concurrent instantiation on one VM host: the
//! paper's architecture advertises VM futures with multiple slots
//! per host, so bursts of sessions land on the same gatekeeper and
//! the same disk. We submit K simultaneous `globusrun`s of the
//! fastest scenario (restore / non-persistent / DiskFS) and report
//! how per-VM startup latency degrades with K — the number a
//! provider needs before advertising slot counts.

use gridvm_bench::harness::{
    m, run_main, Experiment, ExperimentReport, Measurement, Options, SampleCtx, Scenario,
};
use gridvm_core::server::ComputeServer;
use gridvm_core::startup::{run_startup_at, StartupConfig, StartupMode, StateAccess};
use gridvm_simcore::stats::OnlineStats;
use gridvm_simcore::time::SimTime;
use gridvm_vmm::machine::DiskMode;

const BURSTS: [usize; 4] = [1, 2, 4, 8];

struct ContentionExtension;

impl Experiment for ContentionExtension {
    fn title(&self) -> &str {
        "Extension E4: concurrent VM instantiation on one host"
    }

    fn scenarios(&self, _opts: &Options) -> Vec<Scenario> {
        BURSTS
            .iter()
            .enumerate()
            .map(|(i, k)| Scenario::new(i, format!("{k} concurrent"), 1))
            .collect()
    }

    fn run_sample(
        &self,
        scenario: &Scenario,
        ctx: &SampleCtx,
        _opts: &Options,
    ) -> Vec<Measurement> {
        let k = BURSTS[scenario.index];
        let cfg = StartupConfig::table2(
            StartupMode::Restore,
            DiskMode::NonPersistent,
            StateAccess::DiskFs,
        );
        // One shared server: the gatekeeper and disk serialize the
        // burst; each VM's own state read still happens per VM.
        let mut server = ComputeServer::paper_node("burst-host");
        let root = ctx.rng();
        let mut stats = OnlineStats::new();
        for i in 0..k {
            let mut rng = root.split(&format!("vm{i}"));
            let b = run_startup_at(&mut server, &cfg, &mut rng, SimTime::ZERO);
            stats.record(b.total_secs());
        }
        vec![m("mean_s", stats.mean()), m("worst_s", stats.max())]
    }

    fn epilogue(&self, report: &ExperimentReport, _opts: &Options) -> Option<String> {
        let solo = report.scenario("1 concurrent")?.mean("mean_s");
        let mut out = String::new();
        for s in &report.scenarios {
            out.push_str(&format!(
                "{:<14} worst vs solo: {:.2}x\n",
                s.scenario.label,
                s.mean("worst_s") / solo
            ));
        }
        out.push_str(
            "expected: the gatekeeper (auth+dispatch ≈ 2.8 s/job) and the shared disk\n\
             stretch the tail roughly linearly — the provider should advertise\n\
             VM-future slots accordingly",
        );
        Some(out)
    }
}

fn main() {
    run_main(&ContentionExtension);
}
