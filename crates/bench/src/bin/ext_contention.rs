//! **Extension E4** — concurrent instantiation on one VM host: the
//! paper's architecture advertises VM futures with multiple slots
//! per host, so bursts of sessions land on the same gatekeeper and
//! the same disk. We submit K simultaneous `globusrun`s of the
//! fastest scenario (restore / non-persistent / DiskFS) and report
//! how per-VM startup latency degrades with K — the number a
//! provider needs before advertising slot counts.

use gridvm_bench::harness::{banner, render_table, Options};
use gridvm_core::server::ComputeServer;
use gridvm_core::startup::{run_startup_at, StartupConfig, StartupMode, StateAccess};
use gridvm_simcore::rng::SimRng;
use gridvm_simcore::stats::OnlineStats;
use gridvm_simcore::time::SimTime;
use gridvm_vmm::machine::DiskMode;

fn main() {
    let opts = Options::from_args();
    banner(
        "Extension E4: concurrent VM instantiation on one host",
        &opts,
    );
    let cfg = StartupConfig::table2(
        StartupMode::Restore,
        DiskMode::NonPersistent,
        StateAccess::DiskFs,
    );

    let mut rows = Vec::new();
    let mut solo_mean = 0.0;
    for k in [1usize, 2, 4, 8] {
        // One shared server: the gatekeeper and disk serialize the
        // burst; each VM's own state read still happens per VM.
        let mut server = ComputeServer::paper_node("burst-host");
        let root = SimRng::seed_from(opts.seed).split(&format!("k{k}"));
        let mut stats = OnlineStats::new();
        for i in 0..k {
            let mut rng = root.split(&format!("vm{i}"));
            let b = run_startup_at(&mut server, &cfg, &mut rng, SimTime::ZERO);
            stats.record(b.total_secs());
        }
        if k == 1 {
            solo_mean = stats.mean();
        }
        rows.push(vec![
            format!("{k} concurrent"),
            format!("{:.1}", stats.mean()),
            format!("{:.1}", stats.max()),
            format!("{:.2}x", stats.max() / solo_mean),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["burst size", "mean (s)", "worst (s)", "worst vs solo"],
            &rows,
            16
        )
    );
    println!("expected: the gatekeeper (auth+dispatch ≈ 2.8 s/job) and the shared disk");
    println!("stretch the tail roughly linearly — the provider should advertise");
    println!("VM-future slots accordingly");
}
