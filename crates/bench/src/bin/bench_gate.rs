//! Bench-regression gate: compares a fresh `baseline` run against the
//! committed perf trajectory point.
//!
//! CI runs `baseline --quick --json <fresh.json>` and then this
//! binary:
//!
//! ```text
//! cargo run --release -p gridvm-bench --bin bench_gate -- \
//!     --committed BENCH_simcore.json --fresh /tmp/fresh.json \
//!     --gate "engine: chained events" \
//!     --gate "overlay: routed packet churn=0.40" \
//!     [--max-drop 0.30]
//! ```
//!
//! Each `--gate` names one scenario, optionally with its own tolerated
//! drop after `=` (labels contain `:`, so `=` is the separator);
//! scenarios without one use `--max-drop` (default 30%). With no
//! `--gate` flags the engine chained-event loop is gated alone, as
//! before. The gate fails (exit 1) when any fresh `ops_per_sec` mean
//! drops more than its threshold below the committed mean — every
//! gated scenario is checked and reported before the verdict, so one
//! run shows all regressions. Only drops fail: wall-clock throughput
//! is machine-dependent, so the committed number is a *floor* with
//! slack, not a target. Both files use the `gridvm-bench/v1` schema
//! emitted by the harness; the values are extracted with a
//! purpose-built string scan (the workspace deliberately has no JSON
//! dependency).

use std::process::ExitCode;

/// Scenario gated by default: the engine chained-event loop is the
/// substrate headline number every reproduction binary rides on.
const DEFAULT_SCENARIO: &str = "engine: chained events";

/// Default tolerated drop below the committed mean. Generous because
/// CI machines are noisy and slower than the machine that recorded
/// the committed point; the gate exists to catch order-of-magnitude
/// regressions (an accidental O(n) in the hot loop), not 10% drifts.
const DEFAULT_MAX_DROP: f64 = 0.30;

/// Extracts the `ops_per_sec` mean for `scenario` from a
/// `gridvm-bench/v1` report: finds the scenario's label, then the
/// first `"ops_per_sec"` measurement after it, then its `"mean"`.
fn ops_per_sec_mean(json: &str, scenario: &str) -> Result<f64, String> {
    let label_token = format!("\"label\":\"{scenario}\"");
    let at = json
        .find(&label_token)
        .ok_or_else(|| format!("scenario {scenario:?} not found in report"))?;
    let rest = &json[at..];
    let ops = rest
        .find("\"ops_per_sec\":{")
        .ok_or_else(|| format!("scenario {scenario:?} has no ops_per_sec measurement"))?;
    let rest = &rest[ops..];
    let mean_token = "\"mean\":";
    let mean = rest
        .find(mean_token)
        .ok_or_else(|| format!("scenario {scenario:?} ops_per_sec has no mean"))?;
    let tail = &rest[mean + mean_token.len()..];
    let end = tail
        .find([',', '}'])
        .ok_or_else(|| format!("unterminated mean value for {scenario:?}"))?;
    tail[..end]
        .trim()
        .parse::<f64>()
        .map_err(|e| format!("unparseable mean {:?} for {scenario:?}: {e}", &tail[..end]))
}

/// One gated scenario: its label and, when given, a per-scenario
/// tolerated drop overriding `--max-drop`.
struct Gate {
    scenario: String,
    max_drop: Option<f64>,
}

/// Parses a `--gate` operand: `"label"` or `"label=drop"`. Labels
/// contain `:`, so `=` is the threshold separator.
fn parse_gate(spec: &str) -> Result<Gate, String> {
    match spec.rsplit_once('=') {
        None => Ok(Gate {
            scenario: spec.to_owned(),
            max_drop: None,
        }),
        Some((label, drop)) => {
            let drop = drop
                .parse::<f64>()
                .map_err(|e| format!("--gate {spec:?}: bad drop: {e}"))?;
            if !(0.0..1.0).contains(&drop) {
                return Err(format!("--gate {spec:?}: drop must be in [0, 1)"));
            }
            Ok(Gate {
                scenario: label.to_owned(),
                max_drop: Some(drop),
            })
        }
    }
}

struct Args {
    committed: String,
    fresh: String,
    gates: Vec<Gate>,
    max_drop: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut committed = None;
    let mut fresh = None;
    let mut gates = Vec::new();
    let mut max_drop = DEFAULT_MAX_DROP;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} requires a value"));
        match flag.as_str() {
            "--committed" => committed = Some(value("--committed")?),
            "--fresh" => fresh = Some(value("--fresh")?),
            "--gate" => gates.push(parse_gate(&value("--gate")?)?),
            "--max-drop" => {
                max_drop = value("--max-drop")?
                    .parse::<f64>()
                    .map_err(|e| format!("--max-drop: {e}"))?;
                if !(0.0..1.0).contains(&max_drop) {
                    return Err("--max-drop must be in [0, 1)".to_owned());
                }
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if gates.is_empty() {
        gates.push(Gate {
            scenario: DEFAULT_SCENARIO.to_owned(),
            max_drop: None,
        });
    }
    Ok(Args {
        committed: committed.ok_or("--committed <file> is required")?,
        fresh: fresh.ok_or("--fresh <file> is required")?,
        gates,
        max_drop,
    })
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let committed = std::fs::read_to_string(&args.committed)
        .map_err(|e| format!("reading {}: {e}", args.committed))?;
    let fresh =
        std::fs::read_to_string(&args.fresh).map_err(|e| format!("reading {}: {e}", args.fresh))?;
    let mut regressions = Vec::new();
    for gate in &args.gates {
        let drop = gate.max_drop.unwrap_or(args.max_drop);
        let want = ops_per_sec_mean(&committed, &gate.scenario)?;
        let got = ops_per_sec_mean(&fresh, &gate.scenario)?;
        let floor = want * (1.0 - drop);
        println!(
            "bench_gate: {:?} committed {want:.0} ops/sec, fresh {got:.0} ops/sec, floor \
             {floor:.0} (max drop {:.0}%)",
            gate.scenario,
            drop * 100.0
        );
        if got < floor {
            regressions.push(format!(
                "{:?}: fresh {got:.0} ops/sec is {:.1}% below the committed {want:.0}",
                gate.scenario,
                (1.0 - got / want) * 100.0
            ));
        }
    }
    if !regressions.is_empty() {
        return Err(format!("regression: {}", regressions.join("; ")));
    }
    println!("bench_gate: OK ({} scenario(s) gated)", args.gates.len());
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench_gate: FAIL: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal but faithful excerpt of the `gridvm-bench/v1` shape.
    const SAMPLE: &str = r#"{"schema":"gridvm-bench/v1","scenarios":[
        {"label":"engine: chained events","samples":5,"paper":null,
         "measurements":{"ops_per_sec":{"count":5,"mean":42132855.097271875,"std":770302.34,"min":41457238.5,"max":43048820.8},
                         "wall_us":{"count":5,"mean":2374.07,"std":43.13,"min":2322.9,"max":2412.1}},
         "metrics":{"counters":{"sim.events_executed":500000},"gauges":{},"timers":{}}},
        {"label":"queue: push+pop random times","samples":5,"paper":null,
         "measurements":{"ops_per_sec":{"count":5,"mean":7578472.375,"std":806744.57,"min":6307862.2,"max":8293575.3}},
         "metrics":{"counters":{},"gauges":{},"timers":{}}}]}"#;

    #[test]
    fn extracts_the_right_scenario_mean() {
        let v = ops_per_sec_mean(SAMPLE, "engine: chained events").unwrap();
        assert!((v - 42_132_855.097_271_875).abs() < 1e-6);
        let v = ops_per_sec_mean(SAMPLE, "queue: push+pop random times").unwrap();
        assert!((v - 7_578_472.375).abs() < 1e-6);
    }

    #[test]
    fn missing_scenario_is_an_error() {
        let err = ops_per_sec_mean(SAMPLE, "no such scenario").unwrap_err();
        assert!(err.contains("not found"), "{err}");
    }

    #[test]
    fn truncated_report_is_an_error() {
        let cut = &SAMPLE[..SAMPLE.find("ops_per_sec").unwrap()];
        let err = ops_per_sec_mean(cut, "engine: chained events").unwrap_err();
        assert!(err.contains("no ops_per_sec"), "{err}");
    }

    #[test]
    fn gate_spec_without_threshold_uses_global_drop() {
        let g = parse_gate("overlay: routed packet churn").unwrap();
        assert_eq!(g.scenario, "overlay: routed packet churn");
        assert_eq!(g.max_drop, None);
    }

    #[test]
    fn gate_spec_with_threshold_parses_both_parts() {
        // Labels contain ':', so '=' separates the per-scenario drop.
        let g = parse_gate("slot: insert/remove/get churn=0.45").unwrap();
        assert_eq!(g.scenario, "slot: insert/remove/get churn");
        assert_eq!(g.max_drop, Some(0.45));
    }

    #[test]
    fn gate_spec_rejects_bad_thresholds() {
        assert!(parse_gate("engine: chained events=1.5").is_err());
        assert!(parse_gate("engine: chained events=nope").is_err());
    }

    #[test]
    fn mean_is_read_from_ops_not_wall_us() {
        // wall_us also has a "mean"; the scan must anchor on the
        // ops_per_sec object first.
        let v = ops_per_sec_mean(SAMPLE, "engine: chained events").unwrap();
        assert!(v > 1e6, "got wall_us mean by mistake: {v}");
    }
}
