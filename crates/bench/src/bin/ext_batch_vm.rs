//! **Extension E2** — VM startup latency as batch-throughput cost:
//! a PBS-style queue (EASY backfill) runs a job mix on an 8-node
//! cluster where every job executes in a freshly instantiated VM.
//! We sweep the instantiation mode across Table 2's measured means
//! and report what each does to makespan and average wait — the
//! operational argument for non-persistent disks and warm restores.

use gridvm_bench::harness::{banner, render_table, Options};
use gridvm_gridmw::batch::{schedule, with_startup_overhead, BatchJob, QueuePolicy};
use gridvm_simcore::rng::SimRng;
use gridvm_simcore::time::{SimDuration, SimTime};

fn main() {
    let opts = Options::from_args();
    banner(
        "Extension E2: Table 2 startup modes as batch-throughput cost",
        &opts,
    );
    let nodes = 8;
    let job_count = if opts.quick { 16 } else { 64 };

    // The job mix: 1-4 nodes, 5-30 minutes, Poisson-ish arrivals.
    let mut rng = SimRng::seed_from(opts.seed);
    let mut arrival = 0.0f64;
    let base_jobs: Vec<(SimTime, BatchJob)> = (0..job_count)
        .map(|i| {
            arrival += rng.exponential(120.0);
            let job = BatchJob::new(
                format!("job{i:03}"),
                rng.next_in(1, 4) as usize,
                SimDuration::from_secs(rng.next_in(300, 1800)),
            );
            (SimTime::ZERO + SimDuration::from_secs_f64(arrival), job)
        })
        .collect();

    // Startup prologues from Table 2 (measured means of this repo).
    let modes = [
        ("no VM (native queue)", 0.0),
        ("VM-restore / DiskFS", 11.8),
        ("VM-restore / LoopbackNFS", 23.6),
        ("VM-reboot / DiskFS", 63.9),
        ("VM-reboot / Persistent copy", 279.6),
    ];

    let mut rows = Vec::new();
    let mut baseline_makespan = 0.0f64;
    for (label, startup_secs) in modes {
        let startup = SimDuration::from_secs_f64(startup_secs);
        let jobs: Vec<(SimTime, BatchJob)> = base_jobs
            .iter()
            .map(|(t, j)| (*t, with_startup_overhead(j, startup)))
            .collect();
        let out = schedule(&jobs, nodes, QueuePolicy::EasyBackfill).expect("mix fits the machine");
        let makespan = out
            .iter()
            .map(|o| o.finished.as_secs_f64())
            .fold(0.0, f64::max);
        let avg_wait = out.iter().map(|o| o.wait().as_secs_f64()).sum::<f64>() / out.len() as f64;
        if startup_secs == 0.0 {
            baseline_makespan = makespan;
        }
        rows.push(vec![
            label.to_owned(),
            format!("{:.1}", makespan / 3600.0),
            format!("{avg_wait:.0}"),
            format!("{:+.1}%", (makespan / baseline_makespan - 1.0) * 100.0),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "instantiation mode",
                "makespan (h)",
                "avg wait (s)",
                "vs native"
            ],
            &rows,
            30
        )
    );
    println!("expected: warm restores cost a few percent of throughput — the price of");
    println!("VM isolation; persistent copies are operationally untenable for short jobs");
}
