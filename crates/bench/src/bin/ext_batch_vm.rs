//! **Extension E2** — VM startup latency as batch-throughput cost:
//! a PBS-style queue (EASY backfill) runs a job mix on an 8-node
//! cluster where every job executes in a freshly instantiated VM.
//! We sweep the instantiation mode across Table 2's measured means
//! and report what each does to makespan and average wait — the
//! operational argument for non-persistent disks and warm restores.

use gridvm_bench::harness::{
    m, run_main, Experiment, ExperimentReport, Measurement, Options, SampleCtx, Scenario,
};
use gridvm_gridmw::batch::{schedule, with_startup_overhead, BatchJob, QueuePolicy};
use gridvm_simcore::rng::SimRng;
use gridvm_simcore::time::{SimDuration, SimTime};

const NODES: usize = 8;

/// Startup prologues from Table 2 (measured means of this repo).
const MODES: [(&str, f64); 5] = [
    ("no VM (native queue)", 0.0),
    ("VM-restore / DiskFS", 11.8),
    ("VM-restore / LoopbackNFS", 23.6),
    ("VM-reboot / DiskFS", 63.9),
    ("VM-reboot / Persistent copy", 279.6),
];

/// The job mix: 1-4 nodes, 5-30 minutes, Poisson-ish arrivals. It is
/// derived from the master seed alone so every startup mode schedules
/// the identical mix.
fn job_mix(opts: &Options) -> Vec<(SimTime, BatchJob)> {
    let job_count = if opts.quick { 16 } else { 64 };
    let mut rng = SimRng::seed_from(opts.seed);
    let mut arrival = 0.0f64;
    (0..job_count)
        .map(|i| {
            arrival += rng.exponential(120.0);
            let job = BatchJob::new(
                format!("job{i:03}"),
                rng.next_in(1, 4) as usize,
                SimDuration::from_secs(rng.next_in(300, 1800)),
            );
            (SimTime::ZERO + SimDuration::from_secs_f64(arrival), job)
        })
        .collect()
}

struct BatchVmExtension;

impl Experiment for BatchVmExtension {
    fn title(&self) -> &str {
        "Extension E2: Table 2 startup modes as batch-throughput cost"
    }

    fn scenarios(&self, _opts: &Options) -> Vec<Scenario> {
        MODES
            .iter()
            .enumerate()
            .map(|(i, (label, _))| Scenario::new(i, *label, 1))
            .collect()
    }

    fn run_sample(
        &self,
        scenario: &Scenario,
        _ctx: &SampleCtx,
        opts: &Options,
    ) -> Vec<Measurement> {
        let (_, startup_secs) = MODES[scenario.index];
        let startup = SimDuration::from_secs_f64(startup_secs);
        let jobs: Vec<(SimTime, BatchJob)> = job_mix(opts)
            .iter()
            .map(|(t, j)| (*t, with_startup_overhead(j, startup)))
            .collect();
        let out = schedule(&jobs, NODES, QueuePolicy::EasyBackfill).expect("mix fits the machine");
        let makespan = out
            .iter()
            .map(|o| o.finished.as_secs_f64())
            .fold(0.0, f64::max);
        let avg_wait = out.iter().map(|o| o.wait().as_secs_f64()).sum::<f64>() / out.len() as f64;
        vec![
            m("makespan_h", makespan / 3600.0),
            m("avg_wait_s", avg_wait),
        ]
    }

    fn epilogue(&self, report: &ExperimentReport, _opts: &Options) -> Option<String> {
        let baseline = report.scenario(MODES[0].0)?.mean("makespan_h");
        let mut out = String::new();
        for s in &report.scenarios {
            out.push_str(&format!(
                "{:<30} makespan vs native: {:+.1}%\n",
                s.scenario.label,
                (s.mean("makespan_h") / baseline - 1.0) * 100.0
            ));
        }
        out.push_str(
            "expected: warm restores cost a few percent of throughput — the price of\n\
             VM isolation; persistent copies are operationally untenable for short jobs",
        );
        Some(out)
    }
}

fn main() {
    run_main(&BatchVmExtension);
}
