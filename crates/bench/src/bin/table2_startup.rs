//! **Table 2** — VM startup times: mean/std/min/max over 10 samples
//! of `globusrun` wall-clock time for six scenarios:
//! {VM-reboot, VM-restore} × {Persistent, Non-persistent DiskFS,
//! Non-persistent LoopbackNFS}.
//!
//! Paper targets (seconds):
//!
//! | scenario                     | mean  |
//! |------------------------------|-------|
//! | reboot  / Persistent         | 273   |
//! | reboot  / DiskFS             | 69.2  |
//! | reboot  / LoopbackNFS        | 74.5  |
//! | restore / Persistent         | 269   |
//! | restore / DiskFS             | 12.4  |
//! | restore / LoopbackNFS        | 29.2  |

use gridvm_bench::harness::{
    m, run_main, Experiment, ExperimentReport, Measurement, Options, SampleCtx, Scenario,
};
use gridvm_core::server::ComputeServer;
use gridvm_core::startup::{run_startup, StartupConfig, StartupMode, StateAccess};
use gridvm_simcore::metrics;
use gridvm_vmm::machine::DiskMode;

struct Table2 {
    scenarios: Vec<(StartupConfig, f64)>,
}

impl Table2 {
    fn new() -> Self {
        let cases = [
            (
                StartupMode::Reboot,
                DiskMode::Persistent,
                StateAccess::DiskFs,
                273.0,
            ),
            (
                StartupMode::Reboot,
                DiskMode::NonPersistent,
                StateAccess::DiskFs,
                69.2,
            ),
            (
                StartupMode::Reboot,
                DiskMode::NonPersistent,
                StateAccess::LoopbackNfs,
                74.5,
            ),
            (
                StartupMode::Restore,
                DiskMode::Persistent,
                StateAccess::DiskFs,
                269.0,
            ),
            (
                StartupMode::Restore,
                DiskMode::NonPersistent,
                StateAccess::DiskFs,
                12.4,
            ),
            (
                StartupMode::Restore,
                DiskMode::NonPersistent,
                StateAccess::LoopbackNfs,
                29.2,
            ),
        ];
        Table2 {
            scenarios: cases
                .into_iter()
                .map(|(mode, disk, access, paper)| {
                    (StartupConfig::table2(mode, disk, access), paper)
                })
                .collect(),
        }
    }
}

impl Experiment for Table2 {
    fn title(&self) -> &str {
        "Table 2: VM startup times (globusrun wall clock, seconds)"
    }

    fn scenarios(&self, opts: &Options) -> Vec<Scenario> {
        self.scenarios
            .iter()
            .enumerate()
            .map(|(i, (cfg, _))| Scenario::new(i, cfg.label(), opts.samples_or(10)))
            .collect()
    }

    fn run_sample(
        &self,
        scenario: &Scenario,
        ctx: &SampleCtx,
        _opts: &Options,
    ) -> Vec<Measurement> {
        let (cfg, _) = &self.scenarios[scenario.index];
        let mut server = ComputeServer::paper_node("V");
        let b = run_startup(&mut server, cfg, &mut ctx.rng());
        // Phase breakdown lands in the metrics registry, so the
        // epilogue (and the JSON report) can show per-phase means.
        metrics::timer_record("startup.middleware_in_s", b.middleware_in.as_secs_f64());
        metrics::timer_record("startup.image_copy_s", b.image_copy.as_secs_f64());
        metrics::timer_record("startup.monitor_setup_s", b.monitor_setup.as_secs_f64());
        metrics::timer_record("startup.state_load_s", b.state_load.as_secs_f64());
        metrics::timer_record("startup.guest_cpu_s", b.guest_cpu.as_secs_f64());
        metrics::timer_record("startup.middleware_out_s", b.middleware_out.as_secs_f64());
        vec![m("total_s", b.total_secs())]
    }

    fn paper_reference(&self, scenario: &Scenario) -> Option<f64> {
        Some(self.scenarios[scenario.index].1)
    }

    fn epilogue(&self, report: &ExperimentReport, _opts: &Options) -> Option<String> {
        let mut out = String::new();
        for s in &report.scenarios {
            let phase = |name: &str| {
                s.metrics
                    .timer(name)
                    .map(|t| t.stats().mean())
                    .unwrap_or(0.0)
            };
            out.push_str(&format!(
                "{:<44} phase means: mw-in {:.1} copy {:.1} setup {:.1} load {:.1} \
                 cpu {:.1} mw-out {:.1}\n",
                s.scenario.label,
                phase("startup.middleware_in_s"),
                phase("startup.image_copy_s"),
                phase("startup.monitor_setup_s"),
                phase("startup.state_load_s"),
                phase("startup.guest_cpu_s"),
                phase("startup.middleware_out_s"),
            ));
        }
        out.push_str(
            "shape checks: restore << reboot (non-persistent); persistent >> all; NFS > DiskFS",
        );
        Some(out)
    }
}

fn main() {
    run_main(&Table2::new());
}
