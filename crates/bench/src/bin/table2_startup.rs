//! **Table 2** — VM startup times: mean/std/min/max over 10 samples
//! of `globusrun` wall-clock time for six scenarios:
//! {VM-reboot, VM-restore} × {Persistent, Non-persistent DiskFS,
//! Non-persistent LoopbackNFS}.
//!
//! Paper targets (seconds):
//!
//! | scenario                     | mean  |
//! |------------------------------|-------|
//! | reboot  / Persistent         | 273   |
//! | reboot  / DiskFS             | 69.2  |
//! | reboot  / LoopbackNFS        | 74.5  |
//! | restore / Persistent         | 269   |
//! | restore / DiskFS             | 12.4  |
//! | restore / LoopbackNFS        | 29.2  |

use gridvm_bench::harness::{banner, render_table, Options};
use gridvm_core::server::ComputeServer;
use gridvm_core::startup::{run_startup, StartupConfig, StartupMode, StateAccess};
use gridvm_simcore::rng::SimRng;
use gridvm_simcore::stats::OnlineStats;
use gridvm_vmm::machine::DiskMode;

fn main() {
    let opts = Options::from_args();
    banner(
        "Table 2: VM startup times (globusrun wall clock, seconds)",
        &opts,
    );
    let samples = opts.samples_or(10);

    let scenarios = [
        (
            StartupMode::Reboot,
            DiskMode::Persistent,
            StateAccess::DiskFs,
            273.0,
        ),
        (
            StartupMode::Reboot,
            DiskMode::NonPersistent,
            StateAccess::DiskFs,
            69.2,
        ),
        (
            StartupMode::Reboot,
            DiskMode::NonPersistent,
            StateAccess::LoopbackNfs,
            74.5,
        ),
        (
            StartupMode::Restore,
            DiskMode::Persistent,
            StateAccess::DiskFs,
            269.0,
        ),
        (
            StartupMode::Restore,
            DiskMode::NonPersistent,
            StateAccess::DiskFs,
            12.4,
        ),
        (
            StartupMode::Restore,
            DiskMode::NonPersistent,
            StateAccess::LoopbackNfs,
            29.2,
        ),
    ];

    let mut rows = Vec::new();
    for (mode, disk_mode, access, paper_mean) in scenarios {
        let cfg = StartupConfig::table2(mode, disk_mode, access);
        let root = SimRng::seed_from(opts.seed).split(&cfg.label());
        let mut stats = OnlineStats::new();
        let mut last = None;
        for i in 0..samples {
            let mut server = ComputeServer::paper_node("V");
            let mut rng = root.split(&format!("sample-{i}"));
            let b = run_startup(&mut server, &cfg, &mut rng);
            stats.record(b.total_secs());
            last = Some(b);
        }
        rows.push(vec![
            cfg.label(),
            format!("{:.1}", stats.mean()),
            format!("{:.1}", stats.std_dev()),
            format!("{:.1}", stats.min()),
            format!("{:.1}", stats.max()),
            format!("{paper_mean:.1}"),
        ]);
        if let Some(b) = last {
            println!(
                "{:<44} phases: mw-in {:.1} copy {:.1} setup {:.1} load {:.1} cpu {:.1} mw-out {:.1}",
                cfg.label(),
                b.middleware_in.as_secs_f64(),
                b.image_copy.as_secs_f64(),
                b.monitor_setup.as_secs_f64(),
                b.state_load.as_secs_f64(),
                b.guest_cpu.as_secs_f64(),
                b.middleware_out.as_secs_f64(),
            );
        }
    }
    println!();
    println!(
        "{}",
        render_table(
            &["scenario", "mean", "std", "min", "max", "paper"],
            &rows,
            44
        )
    );
    println!("shape checks: restore << reboot (non-persistent); persistent >> all; NFS > DiskFS");
}
