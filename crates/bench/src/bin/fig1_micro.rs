//! **Figure 1** — microbenchmark: slowdown of a synthetic
//! compute-bound test task under background load, for twelve
//! scenarios: {none, light, heavy} × {load on physical | VM} ×
//! {test task on physical | VM}.
//!
//! Paper setup: dual Pentium III/800, VMware Workstation 3.0a guest
//! with 128 MB; load produced by host-load trace playback; 1000
//! samples per scenario; reported as mean ± one standard deviation.
//! Takeaway to reproduce: *"independently of load, the test tasks
//! see a typical slowdown of 10% or less when running on the virtual
//! machine case."*

use gridvm_bench::harness::{
    m, run_main, Experiment, ExperimentReport, Measurement, Options, SampleCtx, Scenario,
};
use gridvm_host::{HostConfig, HostSim, TaskSpec};
use gridvm_hostload::{LoadLevel, TraceGenerator, TracePlayback};
use gridvm_sched::SchedulerKind;
use gridvm_simcore::time::SimDuration;
use gridvm_simcore::units::CpuWork;
use gridvm_vmm::VirtCostModel;

/// Where a task (load or test) runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Placement {
    Physical,
    Vm,
}

impl Placement {
    fn label(self) -> &'static str {
        match self {
            Placement::Physical => "phys",
            Placement::Vm => "VM",
        }
    }
}

struct Fig1 {
    cases: Vec<(LoadLevel, Placement, Placement)>,
    config: HostConfig,
    model: VirtCostModel,
    test_work: CpuWork,
}

impl Fig1 {
    fn new() -> Self {
        let mut cases = Vec::new();
        for level in LoadLevel::ALL {
            for load_place in [Placement::Physical, Placement::Vm] {
                for test_place in [Placement::Physical, Placement::Vm] {
                    cases.push((level, load_place, test_place));
                }
            }
        }
        let config = HostConfig::default(); // dual PIII/800
        Fig1 {
            cases,
            config,
            model: VirtCostModel::default(),
            test_work: CpuWork::from_duration(SimDuration::from_secs(3), config.clock_hz),
        }
    }
}

impl Experiment for Fig1 {
    fn title(&self) -> &str {
        "Figure 1: microbenchmark slowdown under background load"
    }

    fn scenarios(&self, opts: &Options) -> Vec<Scenario> {
        let samples = opts.samples_or(if opts.quick { 40 } else { 1000 });
        self.cases
            .iter()
            .enumerate()
            .map(|(i, (level, load_place, test_place))| {
                Scenario::new(
                    i,
                    format!(
                        "{:5} load, load on {:4}, test on {:4}",
                        level.label(),
                        load_place.label(),
                        test_place.label()
                    ),
                    samples,
                )
            })
            .collect()
    }

    fn run_sample(
        &self,
        scenario: &Scenario,
        ctx: &SampleCtx,
        _opts: &Options,
    ) -> Vec<Measurement> {
        let (level, load_place, test_place) = self.cases[scenario.index];
        let rng = ctx.rng();
        let mut host = HostSim::new(
            self.config,
            SchedulerKind::TimeShare.build(),
            rng.split("sched"),
        );
        // Background load from a freshly generated trace segment.
        if level != LoadLevel::None {
            let trace = TraceGenerator::preset(level)
                .with_interval(SimDuration::from_millis(250))
                .generate(600, &mut rng.split("trace"));
            let per_task = match load_place {
                Placement::Physical => TaskSpec::compute(CpuWork::ZERO),
                Placement::Vm => TaskSpec::compute(CpuWork::ZERO)
                    .with_switch_overhead(self.model.switch_overhead()),
            };
            host.set_background(TracePlayback::new(trace), 4, per_task);
        }
        let spec = match test_place {
            Placement::Physical => self.model.native_task(self.test_work),
            Placement::Vm => self.model.guest_task(self.test_work, 0.0),
        };
        let baseline = self.model.native_task(self.test_work);
        let id = host.spawn(spec);
        let outcome = host
            .run_until_complete(id, SimDuration::from_secs(600))
            .expect("test task finishes within 10 simulated minutes");
        vec![m("slowdown", outcome.slowdown_vs(host.baseline(&baseline)))]
    }

    fn epilogue(&self, report: &ExperimentReport, _opts: &Options) -> Option<String> {
        let vm_test_max = report
            .scenarios
            .iter()
            .filter(|s| self.cases[s.scenario.index].2 == Placement::Vm)
            .map(|s| s.mean("slowdown"))
            .fold(0.0f64, f64::max);
        Some(format!(
            "paper takeaway check: max mean slowdown with test task on VM = {vm_test_max:.3} \
             (paper: typically <= ~1.10)"
        ))
    }
}

fn main() {
    run_main(&Fig1::new());
}
