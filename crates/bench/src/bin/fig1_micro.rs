//! **Figure 1** — microbenchmark: slowdown of a synthetic
//! compute-bound test task under background load, for twelve
//! scenarios: {none, light, heavy} × {load on physical | VM} ×
//! {test task on physical | VM}.
//!
//! Paper setup: dual Pentium III/800, VMware Workstation 3.0a guest
//! with 128 MB; load produced by host-load trace playback; 1000
//! samples per scenario; reported as mean ± one standard deviation.
//! Takeaway to reproduce: *"independently of load, the test tasks
//! see a typical slowdown of 10% or less when running on the virtual
//! machine case."*

use gridvm_bench::harness::{banner, render_table, Options};
use gridvm_host::{HostConfig, HostSim, TaskSpec};
use gridvm_hostload::{LoadLevel, TraceGenerator, TracePlayback};
use gridvm_sched::SchedulerKind;
use gridvm_simcore::rng::SimRng;
use gridvm_simcore::stats::OnlineStats;
use gridvm_simcore::time::SimDuration;
use gridvm_simcore::units::CpuWork;
use gridvm_vmm::VirtCostModel;

/// Where a task (load or test) runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Placement {
    Physical,
    Vm,
}

impl Placement {
    fn label(self) -> &'static str {
        match self {
            Placement::Physical => "phys",
            Placement::Vm => "VM",
        }
    }
}

fn main() {
    let opts = Options::from_args();
    banner(
        "Figure 1: microbenchmark slowdown under background load",
        &opts,
    );
    let samples = opts.samples_or(if opts.quick { 40 } else { 1000 });
    let model = VirtCostModel::default();
    let config = HostConfig::default(); // dual PIII/800
    let test_seconds = 3.0;
    let test_work =
        CpuWork::from_duration(SimDuration::from_secs_f64(test_seconds), config.clock_hz);

    let mut rows = Vec::new();
    let mut vm_test_max: f64 = 0.0;
    for level in LoadLevel::ALL {
        for load_place in [Placement::Physical, Placement::Vm] {
            for test_place in [Placement::Physical, Placement::Vm] {
                let label = format!(
                    "{:5} load, load on {:4}, test on {:4}",
                    level.label(),
                    load_place.label(),
                    test_place.label()
                );
                let root = SimRng::seed_from(opts.seed)
                    .split(&format!("{level}/{load_place:?}/{test_place:?}"));
                let mut stats = OnlineStats::new();
                for sample in 0..samples {
                    let mut rng = root.split(&format!("sample-{sample}"));
                    let slow = one_sample(
                        &config, &model, level, load_place, test_place, test_work, &mut rng,
                    );
                    stats.record(slow);
                }
                if test_place == Placement::Vm {
                    vm_test_max = vm_test_max.max(stats.mean());
                }
                rows.push(vec![
                    label,
                    format!("{:.4}", stats.mean()),
                    format!("{:.4}", stats.std_dev()),
                    format!("{:.4}", stats.min()),
                    format!("{:.4}", stats.max()),
                ]);
            }
        }
    }
    println!(
        "{}",
        render_table(&["scenario", "mean", "std", "min", "max"], &rows, 44)
    );
    println!(
        "paper takeaway check: max mean slowdown with test task on VM = {vm_test_max:.3} \
         (paper: typically <= ~1.10)"
    );
}

/// Runs one sample and returns the test task's slowdown relative to
/// a dedicated physical machine.
fn one_sample(
    config: &HostConfig,
    model: &VirtCostModel,
    level: LoadLevel,
    load_place: Placement,
    test_place: Placement,
    test_work: CpuWork,
    rng: &mut SimRng,
) -> f64 {
    let mut host = HostSim::new(
        *config,
        SchedulerKind::TimeShare.build(),
        rng.split("sched"),
    );
    // Background load from a freshly generated trace segment.
    if level != LoadLevel::None {
        let trace = TraceGenerator::preset(level)
            .with_interval(SimDuration::from_millis(250))
            .generate(600, &mut rng.split("trace"));
        let per_task = match load_place {
            Placement::Physical => TaskSpec::compute(CpuWork::ZERO),
            Placement::Vm => {
                TaskSpec::compute(CpuWork::ZERO).with_switch_overhead(model.switch_overhead())
            }
        };
        host.set_background(TracePlayback::new(trace), 4, per_task);
    }
    let spec = match test_place {
        Placement::Physical => model.native_task(test_work),
        Placement::Vm => model.guest_task(test_work, 0.0),
    };
    let baseline = model.native_task(test_work);
    let id = host.spawn(spec);
    let outcome = host
        .run_until_complete(id, SimDuration::from_secs(600))
        .expect("test task finishes within 10 simulated minutes");
    outcome.slowdown_vs(host.baseline(&baseline))
}
