//! **Table 1** — macrobenchmarks: SPECseis and SPECclimate user/sys
//! times and overheads on (a) the physical machine, (b) a VM with
//! state on local disk, and (c) a VM with state accessed via the
//! NFS-based grid virtual file system (PVFS) across a wide-area
//! network.
//!
//! Paper targets: SPECseis 16414 s native, +1.2% VM/local, +2.0%
//! VM/PVFS; SPECclimate 9307 s native, +4.0% VM/local, +4.2%
//! VM/PVFS.

use gridvm_bench::harness::{banner, render_table, Options};
use gridvm_core::NfsGuestStorage;
use gridvm_simcore::rng::SimRng;
use gridvm_simcore::time::SimTime;
use gridvm_simcore::units::ByteSize;
use gridvm_storage::disk::{DiskModel, DiskProfile};
use gridvm_vfs::mount::{Mount, Transport};
use gridvm_vfs::proxy::{ProxyConfig, VfsProxy};
use gridvm_vfs::server::NfsServer;
use gridvm_vmm::exec::{run_app, ExecMode, GuestRunReport, LocalDiskStorage};
use gridvm_vmm::VirtCostModel;
use gridvm_workloads::{spec, AppProfile};

fn main() {
    let opts = Options::from_args();
    banner("Table 1: SPEChpc macrobenchmarks", &opts);
    let model = VirtCostModel::default();

    let mut rows = Vec::new();
    for (make_app, paper_native, paper_vm, paper_pvfs) in [
        (spec::specseis as fn() -> AppProfile, 16414.0, 1.2, 2.0),
        (spec::specclimate as fn() -> AppProfile, 9307.0, 4.0, 4.2),
    ] {
        let app = scaled(&make_app(), &opts);
        let scale = if opts.quick { 0.01 } else { 1.0 };

        let native = run_local(&app, ExecMode::Native, &model, opts.seed);
        let vm_local = run_local(&app, ExecMode::Virtualized, &model, opts.seed);
        let vm_pvfs = run_pvfs(&app, &model, opts.seed);

        for (resource, r) in [
            ("Physical", &native),
            ("VM, local disk", &vm_local),
            ("VM, PVFS", &vm_pvfs),
        ] {
            let overhead = if std::ptr::eq(r, &native) {
                "N/A".to_owned()
            } else {
                format!("{:.1}%", r.overhead_vs(&native) * 100.0)
            };
            rows.push(vec![
                format!("{:<12} {}", app.name(), resource),
                format!("{:.0}", r.user.as_secs_f64() / scale),
                format!("{:.0}", r.sys.as_secs_f64() / scale),
                format!("{:.0}", r.cpu_total().as_secs_f64() / scale),
                overhead,
            ]);
        }
        println!(
            "{} paper: native {paper_native:.0}s, VM +{paper_vm}%, PVFS +{paper_pvfs}%",
            app.name()
        );
    }
    println!();
    println!(
        "{}",
        render_table(
            &[
                "application / resource",
                "user(s)",
                "sys(s)",
                "user+sys",
                "overhead"
            ],
            &rows,
            34
        )
    );
    if opts.quick {
        println!("(quick mode: workloads scaled to 1%; times rescaled for display)");
    }
}

/// In quick mode, shrink the workload 100× (overheads are ratios and
/// survive scaling).
fn scaled(app: &AppProfile, opts: &Options) -> AppProfile {
    if !opts.quick {
        return app.clone();
    }
    AppProfile::new(app.name(), app.user_work().mul_f64(0.01))
        .with_syscalls(app.syscalls() / 100)
        .with_reads(
            ByteSize::from_bytes(app.read_bytes().as_u64() / 100),
            app.io_pattern(),
        )
        .with_writes(ByteSize::from_bytes(app.write_bytes().as_u64() / 100))
        .with_memory_pressure(app.memory_pressure())
}

fn run_local(app: &AppProfile, mode: ExecMode, model: &VirtCostModel, seed: u64) -> GuestRunReport {
    let mut disk = DiskModel::new(DiskProfile::ide_2003());
    let mut storage = LocalDiskStorage::new(&mut disk);
    run_app(
        app,
        mode,
        model,
        &mut storage,
        spec::MACRO_CLOCK_HZ,
        SimTime::ZERO,
        &mut SimRng::seed_from(seed),
    )
}

/// The paper's PVFS scenario: VM state served by an image server at
/// the remote site (UF), application data via proxy-cached NFS; the
/// guest's file I/O flows through the proxy-equipped WAN mount.
fn run_pvfs(app: &AppProfile, model: &VirtCostModel, seed: u64) -> GuestRunReport {
    let mut server = NfsServer::new(DiskModel::new(DiskProfile::ide_2003()));
    let root = server.fs().root();
    let total_io = app.io_bytes() + ByteSize::from_mib(64);
    let file = server
        .fs_mut()
        .create(root, "vmstate", SimTime::ZERO)
        .expect("fresh export");
    // Pre-size the working file so reads hit real data.
    server
        .fs_mut()
        .write(file, total_io.as_u64().max(1) - 1, &[0], SimTime::ZERO)
        .expect("presize");
    let mount = Mount::new(
        Transport::wan(),
        server,
        Some(VfsProxy::new(ProxyConfig::default())),
    );
    let mut storage = NfsGuestStorage::new(mount, file, model.pvfs_client_per_block, "PVFS");
    run_app(
        app,
        ExecMode::Virtualized,
        model,
        &mut storage,
        spec::MACRO_CLOCK_HZ,
        SimTime::ZERO,
        &mut SimRng::seed_from(seed),
    )
}
