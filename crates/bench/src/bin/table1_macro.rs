//! **Table 1** — macrobenchmarks: SPECseis and SPECclimate user/sys
//! times and overheads on (a) the physical machine, (b) a VM with
//! state on local disk, and (c) a VM with state accessed via the
//! NFS-based grid virtual file system (PVFS) across a wide-area
//! network.
//!
//! Paper targets: SPECseis 16414 s native, +1.2% VM/local, +2.0%
//! VM/PVFS; SPECclimate 9307 s native, +4.0% VM/local, +4.2%
//! VM/PVFS.

use gridvm_bench::harness::{
    m, run_main, Experiment, ExperimentReport, Measurement, Options, SampleCtx, Scenario,
};
use gridvm_core::NfsGuestStorage;
use gridvm_simcore::rng::SimRng;
use gridvm_simcore::time::SimTime;
use gridvm_simcore::units::ByteSize;
use gridvm_storage::disk::{DiskModel, DiskProfile};
use gridvm_vfs::mount::{Mount, Transport};
use gridvm_vfs::proxy::{ProxyConfig, VfsProxy};
use gridvm_vfs::server::NfsServer;
use gridvm_vmm::exec::{run_app, ExecMode, GuestRunReport, LocalDiskStorage};
use gridvm_vmm::VirtCostModel;
use gridvm_workloads::{spec, AppProfile};

/// How the guest's state is hosted in one scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Resource {
    Physical,
    VmLocal,
    VmPvfs,
}

impl Resource {
    const ALL: [Resource; 3] = [Resource::Physical, Resource::VmLocal, Resource::VmPvfs];

    fn label(self) -> &'static str {
        match self {
            Resource::Physical => "Physical",
            Resource::VmLocal => "VM, local disk",
            Resource::VmPvfs => "VM, PVFS",
        }
    }
}

/// (app constructor, paper native s, paper VM %, paper PVFS %).
type AppCase = (fn() -> AppProfile, f64, f64, f64);

struct Table1 {
    model: VirtCostModel,
    apps: Vec<AppCase>,
}

impl Table1 {
    fn new() -> Self {
        Table1 {
            model: VirtCostModel::default(),
            apps: vec![
                (spec::specseis as fn() -> AppProfile, 16414.0, 1.2, 2.0),
                (spec::specclimate as fn() -> AppProfile, 9307.0, 4.0, 4.2),
            ],
        }
    }

    fn case(&self, index: usize) -> (AppProfile, Resource) {
        let (make_app, _, _, _) = self.apps[index / Resource::ALL.len()];
        (make_app(), Resource::ALL[index % Resource::ALL.len()])
    }
}

/// In quick mode, shrink the workload 100× (overheads are ratios and
/// survive scaling).
fn scaled(app: &AppProfile, opts: &Options) -> AppProfile {
    if !opts.quick {
        return app.clone();
    }
    AppProfile::new(app.name(), app.user_work().mul_f64(0.01))
        .with_syscalls(app.syscalls() / 100)
        .with_reads(
            ByteSize::from_bytes(app.read_bytes().as_u64() / 100),
            app.io_pattern(),
        )
        .with_writes(ByteSize::from_bytes(app.write_bytes().as_u64() / 100))
        .with_memory_pressure(app.memory_pressure())
}

fn run_local(app: &AppProfile, mode: ExecMode, model: &VirtCostModel, seed: u64) -> GuestRunReport {
    let mut disk = DiskModel::new(DiskProfile::ide_2003());
    let mut storage = LocalDiskStorage::new(&mut disk);
    run_app(
        app,
        mode,
        model,
        &mut storage,
        spec::MACRO_CLOCK_HZ,
        SimTime::ZERO,
        &mut SimRng::seed_from(seed),
    )
}

/// The paper's PVFS scenario: VM state served by an image server at
/// the remote site (UF), application data via proxy-cached NFS; the
/// guest's file I/O flows through the proxy-equipped WAN mount.
fn run_pvfs(app: &AppProfile, model: &VirtCostModel, seed: u64) -> GuestRunReport {
    let mut server = NfsServer::new(DiskModel::new(DiskProfile::ide_2003()));
    let root = server.fs().root();
    let total_io = app.io_bytes() + ByteSize::from_mib(64);
    let file = server
        .fs_mut()
        .create(root, "vmstate", SimTime::ZERO)
        .expect("fresh export");
    // Pre-size the working file so reads hit real data.
    server
        .fs_mut()
        .write(file, total_io.as_u64().max(1) - 1, &[0], SimTime::ZERO)
        .expect("presize");
    let mount = Mount::new(
        Transport::wan(),
        server,
        Some(VfsProxy::new(ProxyConfig::default())),
    );
    let mut storage = NfsGuestStorage::new(mount, file, model.pvfs_client_per_block, "PVFS");
    run_app(
        app,
        ExecMode::Virtualized,
        model,
        &mut storage,
        spec::MACRO_CLOCK_HZ,
        SimTime::ZERO,
        &mut SimRng::seed_from(seed),
    )
}

impl Experiment for Table1 {
    fn title(&self) -> &str {
        "Table 1: SPEChpc macrobenchmarks"
    }

    fn scenarios(&self, _opts: &Options) -> Vec<Scenario> {
        (0..self.apps.len() * Resource::ALL.len())
            .map(|i| {
                let (app, resource) = self.case(i);
                Scenario::new(i, format!("{:<12} {}", app.name(), resource.label()), 1)
            })
            .collect()
    }

    fn run_sample(&self, scenario: &Scenario, ctx: &SampleCtx, opts: &Options) -> Vec<Measurement> {
        let (app, resource) = self.case(scenario.index);
        let app = scaled(&app, opts);
        let scale = if opts.quick { 0.01 } else { 1.0 };
        let report = match resource {
            Resource::Physical => run_local(&app, ExecMode::Native, &self.model, ctx.seed),
            Resource::VmLocal => run_local(&app, ExecMode::Virtualized, &self.model, ctx.seed),
            Resource::VmPvfs => run_pvfs(&app, &self.model, ctx.seed),
        };
        let mut out = vec![
            m("user_s", report.user.as_secs_f64() / scale),
            m("sys_s", report.sys.as_secs_f64() / scale),
            m("total_s", report.cpu_total().as_secs_f64() / scale),
        ];
        if resource != Resource::Physical {
            // Overhead is against a native run of the same workload
            // with the same seed, so it is a pure virtualization cost.
            let native = run_local(&app, ExecMode::Native, &self.model, ctx.seed);
            out.push(m("overhead_pct", report.overhead_vs(&native) * 100.0));
        }
        out
    }

    fn epilogue(&self, _report: &ExperimentReport, opts: &Options) -> Option<String> {
        let mut out = String::new();
        for (make_app, paper_native, paper_vm, paper_pvfs) in &self.apps {
            out.push_str(&format!(
                "{} paper: native {paper_native:.0}s, VM +{paper_vm}%, PVFS +{paper_pvfs}%\n",
                make_app().name()
            ));
        }
        if opts.quick {
            out.push_str("(quick mode: workloads scaled to 1%; times rescaled for display)\n");
        }
        out.pop();
        Some(out)
    }
}

fn main() {
    run_main(&Table1::new());
}
