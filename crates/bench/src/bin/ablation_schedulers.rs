//! **Ablation A2** — scheduler families enforcing owner constraints
//! (Section 3.2): an interactive owner task shares a host with a
//! greedy grid VM under each scheduler family; we measure the
//! owner's slowdown and the VM's achieved throughput.
//!
//! The paper's argument: proportional-share or real-time scheduling
//! of VMM processes lets a provider bound the impact of grid VMs on
//! local users. The constraint-language compiler picks EDF for
//! policies with reserves; this bench shows why.

use gridvm_bench::harness::{
    m, run_main, Experiment, ExperimentReport, Measurement, Options, SampleCtx, Scenario,
};
use gridvm_host::{HostConfig, HostSim, TaskSpec};
use gridvm_sched::constraint::compile;
use gridvm_sched::{SchedulerKind, TaskParams};
use gridvm_simcore::time::SimDuration;
use gridvm_simcore::units::CpuWork;

struct SchedulerAblation;

fn owner_secs(opts: &Options) -> f64 {
    if opts.quick {
        1.0
    } else {
        4.0
    }
}

impl Experiment for SchedulerAblation {
    fn title(&self) -> &str {
        "Ablation A2: owner protection across scheduler families"
    }

    fn scenarios(&self, _opts: &Options) -> Vec<Scenario> {
        SchedulerKind::ALL
            .iter()
            .enumerate()
            .map(|(i, kind)| Scenario::new(i, kind.label(), 1))
            .collect()
    }

    fn run_sample(&self, scenario: &Scenario, ctx: &SampleCtx, opts: &Options) -> Vec<Measurement> {
        let kind = SchedulerKind::ALL[scenario.index];
        let hz = 800e6;
        let owner_secs = owner_secs(opts);
        let owner_work = CpuWork::from_duration(SimDuration::from_secs_f64(owner_secs), hz);
        let mut host = HostSim::new(
            HostConfig {
                cores: 1,
                clock_hz: hz,
                ..HostConfig::default()
            },
            kind.build(),
            ctx.rng(),
        );
        // Owner task: gets the policy's reservation under EDF, a
        // high weight elsewhere.
        let owner_params = match kind {
            SchedulerKind::Edf => TaskParams::with_reservation(
                SimDuration::from_millis(100),
                SimDuration::from_millis(50),
            ),
            _ => TaskParams::with_weight(100),
        };
        let owner = host.spawn(TaskSpec::compute(owner_work).with_params(owner_params));
        // Greedy grid VM: 10x the owner's work, equal tickets.
        let vm = host.spawn(
            TaskSpec::compute(owner_work.mul_f64(10.0))
                .with_params(TaskParams::with_weight(100))
                .with_switch_overhead(SimDuration::from_micros(85)),
        );
        let owner_out = host
            .run_until_complete(owner, SimDuration::from_secs(600))
            .expect("owner finishes");
        let vm_out = host
            .run_until_complete(vm, SimDuration::from_secs(600))
            .expect("vm finishes");
        vec![
            m(
                "owner_slowdown_x",
                owner_out.wall_time().as_secs_f64() / owner_secs,
            ),
            m("vm_finish_s", vm_out.wall_time().as_secs_f64()),
        ]
    }

    fn epilogue(&self, _report: &ExperimentReport, _opts: &Options) -> Option<String> {
        // The owner policy the constraint language would compile.
        let policy = compile(
            r#"
            host cores 1;
            owner reserve 0.5;
            vm "grid-vm" tickets 100;
            "#,
        )
        .expect("valid policy");
        Some(format!(
            "policy compiles to: {} (owner reserve {})\n\
             expected: EDF bounds the owner near its 50% reserve (~2x); \
             fair-share families near 2x with equal weights; the VM still progresses \
             (work-conserving)",
            policy.scheduler_kind(),
            policy.owner_reserve
        ))
    }
}

fn main() {
    run_main(&SchedulerAblation);
}
