//! **Ablation A3** — overlay routing versus direct tunnels
//! (Section 3.3): when the direct underlay path between two remote
//! VMs degrades, the self-optimizing overlay relays through a third
//! VM; direct tunneling is stuck with the degraded path.

use gridvm_bench::harness::{banner, render_table, Options};
use gridvm_simcore::rng::SimRng;
use gridvm_simcore::time::{SimDuration, SimTime};
use gridvm_vnet::overlay::Overlay;

fn main() {
    let opts = Options::from_args();
    banner(
        "Ablation A3: overlay self-optimization vs direct paths",
        &opts,
    );
    let mut rng = SimRng::seed_from(opts.seed);

    // Five VMs across sites; base mesh latencies 20-60 ms.
    let mut ov = Overlay::new();
    let nodes: Vec<_> = (0..5).map(|_| ov.add_node()).collect();
    ov.probe_mesh(SimTime::ZERO, |a, b| {
        Some(SimDuration::from_millis(
            20 + (u64::from(a.0) * 7 + u64::from(b.0) * 13) % 41,
        ))
    });
    let (src, dst) = (nodes[0], nodes[4]);
    let healthy_direct = ov.direct_latency(src, dst).expect("mesh probed");
    let healthy_route = ov.route(src, dst).expect("connected").latency;

    // Degrade the direct path by 3x-20x and compare.
    let mut rows = vec![vec![
        "healthy".to_owned(),
        format!("{:.0}", healthy_direct.as_secs_f64() * 1e3),
        format!("{:.0}", healthy_route.as_secs_f64() * 1e3),
        "1.00x".to_owned(),
    ]];
    for factor in [3u64, 8, 20] {
        let degraded = healthy_direct * factor;
        ov.update_measurement(src, dst, degraded);
        // Background probe noise on other pairs keeps the mesh live.
        let jitter_ms = rng.next_in(0, 3);
        let _ = jitter_ms;
        let route = ov.route(src, dst).expect("still connected");
        rows.push(vec![
            format!("direct degraded {factor}x"),
            format!("{:.0}", degraded.as_secs_f64() * 1e3),
            format!("{:.0}", route.latency.as_secs_f64() * 1e3),
            format!(
                "{:.2}x",
                degraded.as_secs_f64() / route.latency.as_secs_f64()
            ),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["condition", "direct (ms)", "overlay (ms)", "gain"],
            &rows,
            22
        )
    );
    println!(
        "reroutes performed: {} (overlay re-optimized itself as measurements changed)",
        ov.reroutes()
    );
    println!(
        "expected: overlay latency plateaus at the best relay path while direct keeps worsening"
    );
}
