//! **Ablation A3** — overlay routing versus direct tunnels
//! (Section 3.3): when the direct underlay path between two remote
//! VMs degrades, the self-optimizing overlay relays through a third
//! VM; direct tunneling is stuck with the degraded path.

use gridvm_bench::harness::{
    m, run_main, Experiment, ExperimentReport, Measurement, Options, SampleCtx, Scenario,
};
use gridvm_simcore::metrics;
use gridvm_simcore::time::{SimDuration, SimTime};
use gridvm_vnet::overlay::Overlay;

struct OverlayAblation {
    /// Degradation factor of the direct path; 1 = healthy.
    factors: [u64; 4],
}

impl Experiment for OverlayAblation {
    fn title(&self) -> &str {
        "Ablation A3: overlay self-optimization vs direct paths"
    }

    fn scenarios(&self, _opts: &Options) -> Vec<Scenario> {
        self.factors
            .iter()
            .enumerate()
            .map(|(i, factor)| {
                let label = if *factor == 1 {
                    "healthy".to_owned()
                } else {
                    format!("direct degraded {factor}x")
                };
                Scenario::new(i, label, 1)
            })
            .collect()
    }

    fn run_sample(
        &self,
        scenario: &Scenario,
        _ctx: &SampleCtx,
        _opts: &Options,
    ) -> Vec<Measurement> {
        let factor = self.factors[scenario.index];
        // Five VMs across sites; base mesh latencies 20-60 ms.
        let mut ov = Overlay::new();
        let nodes: Vec<_> = (0..5).map(|_| ov.add_node()).collect();
        ov.probe_mesh(SimTime::ZERO, |a, b| {
            Some(SimDuration::from_millis(
                20 + (u64::from(a.0) * 7 + u64::from(b.0) * 13) % 41,
            ))
        });
        let (src, dst) = (nodes[0], nodes[4]);
        let healthy_direct = ov.direct_latency(src, dst).expect("mesh probed");
        let direct = healthy_direct * factor;
        if factor > 1 {
            ov.update_measurement(src, dst, direct);
        }
        let route = ov.route(src, dst).expect("still connected");
        metrics::counter_add("vnet.reroutes", ov.reroutes());
        vec![
            m("direct_ms", direct.as_secs_f64() * 1e3),
            m("overlay_ms", route.latency.as_secs_f64() * 1e3),
            m("gain_x", direct.as_secs_f64() / route.latency.as_secs_f64()),
        ]
    }

    fn epilogue(&self, report: &ExperimentReport, _opts: &Options) -> Option<String> {
        Some(format!(
            "reroutes performed: {} (overlay re-optimized itself as measurements changed)\n\
             expected: overlay latency plateaus at the best relay path while direct keeps \
             worsening",
            report.metrics.counter("vnet.reroutes")
        ))
    }
}

fn main() {
    run_main(&OverlayAblation {
        factors: [1, 3, 8, 20],
    });
}
