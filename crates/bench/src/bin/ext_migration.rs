//! **Extension E1** — whole-environment migration (Section 3.1):
//! suspend a running VM, move its memory image and copy-on-write
//! disk diff to another virtualized compute server, resume, and
//! re-establish the virtual-file-system sessions. We sweep network
//! speed and dirty-state volume and report the phase breakdown.

use gridvm_bench::harness::{banner, render_table, Options};
use gridvm_core::migration::migrate;
use gridvm_core::server::ComputeServer;
use gridvm_simcore::rng::SimRng;
use gridvm_simcore::server::Pipe;
use gridvm_simcore::time::{SimDuration, SimTime};
use gridvm_simcore::units::Bandwidth;
use gridvm_storage::block::{BlockAddr, BlockStore};
use gridvm_storage::cow::CowOverlay;
use gridvm_storage::image::VmImage;
use gridvm_vmm::machine::{Vm, VmConfig};

fn running_vm(dirty_mib: u64) -> Vm {
    let mut vm = Vm::new(VmConfig::paper_guest("rh72"));
    let mut overlay = CowOverlay::new(VmImage::redhat_guest("rh72").base_store());
    let blocks = dirty_mib * 1024 / 4;
    for i in 0..blocks {
        overlay
            .write(BlockAddr(i), bytes::Bytes::from(vec![0xDDu8; 4096]))
            .expect("in range");
    }
    vm.attach_disk(overlay);
    vm.begin_staging(SimTime::ZERO).expect("fresh");
    vm.begin_boot(SimTime::from_secs(1)).expect("staged");
    vm.mark_running(SimTime::from_secs(2)).expect("booted");
    vm
}

fn main() {
    let opts = Options::from_args();
    banner("Extension E1: whole-environment migration", &opts);

    let mut rows = Vec::new();
    for (net_label, mbps) in [
        ("WAN 20Mb", 20.0),
        ("LAN 100Mb", 100.0),
        ("LAN 1Gb", 1000.0),
    ] {
        for dirty_mib in [0u64, 64, 256] {
            let mut vm = running_vm(if opts.quick { dirty_mib / 4 } else { dirty_mib });
            let mut src = ComputeServer::paper_node("src");
            let mut dst = ComputeServer::paper_node("dst");
            let mut wire = Pipe::new(
                SimDuration::from_millis(if mbps < 50.0 { 17 } else { 1 }),
                Bandwidth::from_mbit_per_sec(mbps),
            );
            let mut rng = SimRng::seed_from(opts.seed ^ dirty_mib ^ (mbps as u64));
            let r = migrate(
                &mut vm,
                &mut src,
                &mut dst,
                &mut wire,
                SimTime::from_secs(10),
                &mut rng,
            )
            .expect("running VM migrates");
            rows.push(vec![
                format!("{net_label}, {dirty_mib} MiB dirty"),
                format!("{:.1}", r.suspend.as_secs_f64()),
                format!("{:.1}", r.transfer.as_secs_f64()),
                format!("{:.1}", r.resume.as_secs_f64()),
                format!("{:.1}", r.downtime().as_secs_f64()),
                format!("{}", r.bytes_moved),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &["scenario", "suspend", "transfer", "resume", "downtime", "moved"],
            &rows,
            26
        )
    );
    println!("expected: transfer scales with dirty state and inversely with bandwidth;");
    println!("suspend/resume are bandwidth-independent (local disk bound)");
}
