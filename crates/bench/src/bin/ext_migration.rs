//! **Extension E1** — whole-environment migration (Section 3.1):
//! suspend a running VM, move its memory image and copy-on-write
//! disk diff to another virtualized compute server, resume, and
//! re-establish the virtual-file-system sessions. We sweep network
//! speed and dirty-state volume and report the phase breakdown.

use gridvm_bench::harness::{
    m, run_main, Experiment, ExperimentReport, Measurement, Options, SampleCtx, Scenario,
};
use gridvm_core::migration::migrate;
use gridvm_core::server::ComputeServer;
use gridvm_simcore::server::Pipe;
use gridvm_simcore::time::{SimDuration, SimTime};
use gridvm_simcore::units::Bandwidth;
use gridvm_storage::block::{BlockAddr, BlockStore};
use gridvm_storage::cow::CowOverlay;
use gridvm_storage::image::VmImage;
use gridvm_vmm::machine::{Vm, VmConfig};

const NETS: [(&str, f64); 3] = [
    ("WAN 20Mb", 20.0),
    ("LAN 100Mb", 100.0),
    ("LAN 1Gb", 1000.0),
];
const DIRTY_MIB: [u64; 3] = [0, 64, 256];

fn running_vm(dirty_mib: u64) -> Vm {
    let mut vm = Vm::new(VmConfig::paper_guest("rh72"));
    let mut overlay = CowOverlay::new(VmImage::redhat_guest("rh72").base_store());
    let blocks = dirty_mib * 1024 / 4;
    for i in 0..blocks {
        overlay
            .write(BlockAddr(i), bytes::Bytes::from(vec![0xDDu8; 4096]))
            .expect("in range");
    }
    vm.attach_disk(overlay);
    vm.begin_staging(SimTime::ZERO).expect("fresh");
    vm.begin_boot(SimTime::from_secs(1)).expect("staged");
    vm.mark_running(SimTime::from_secs(2)).expect("booted");
    vm
}

struct MigrationExtension;

impl Experiment for MigrationExtension {
    fn title(&self) -> &str {
        "Extension E1: whole-environment migration"
    }

    fn scenarios(&self, _opts: &Options) -> Vec<Scenario> {
        let mut out = Vec::new();
        for (net_label, _) in NETS {
            for dirty_mib in DIRTY_MIB {
                let i = out.len();
                out.push(Scenario::new(
                    i,
                    format!("{net_label}, {dirty_mib} MiB dirty"),
                    1,
                ));
            }
        }
        out
    }

    fn run_sample(&self, scenario: &Scenario, ctx: &SampleCtx, opts: &Options) -> Vec<Measurement> {
        let (_, mbps) = NETS[scenario.index / DIRTY_MIB.len()];
        let dirty_mib = DIRTY_MIB[scenario.index % DIRTY_MIB.len()];
        let mut vm = running_vm(if opts.quick { dirty_mib / 4 } else { dirty_mib });
        let mut src = ComputeServer::paper_node("src");
        let mut dst = ComputeServer::paper_node("dst");
        let mut wire = Pipe::new(
            SimDuration::from_millis(if mbps < 50.0 { 17 } else { 1 }),
            Bandwidth::from_mbit_per_sec(mbps),
        );
        let r = migrate(
            &mut vm,
            &mut src,
            &mut dst,
            &mut wire,
            SimTime::from_secs(10),
            &mut ctx.rng(),
        )
        .expect("running VM migrates");
        vec![
            m("suspend_s", r.suspend.as_secs_f64()),
            m("transfer_s", r.transfer.as_secs_f64()),
            m("resume_s", r.resume.as_secs_f64()),
            m("downtime_s", r.downtime().as_secs_f64()),
            m("moved_bytes", r.bytes_moved.as_u64() as f64),
        ]
    }

    fn epilogue(&self, _report: &ExperimentReport, _opts: &Options) -> Option<String> {
        Some(
            "expected: transfer scales with dirty state and inversely with bandwidth;\n\
             suspend/resume are bandwidth-independent (local disk bound)"
                .to_owned(),
        )
    }
}

fn main() {
    run_main(&MigrationExtension);
}
