//! **Extension E3** — RPS prediction quality (Section 3.2
//! "application perspective"): the paper proposes RPS \[11\]
//! time-series prediction as the basis for adaptation decisions. We
//! generate host load at each intensity, fit the AR predictor over a
//! sliding window, and compare its forecast error against the two
//! naive baselines (last value, long-run mean) across horizons —
//! reproducing the qualitative result of the RPS papers: AR wins at
//! short horizons, converges to the mean at long ones.

use gridvm_bench::harness::{banner, render_table, Options};
use gridvm_gridmw::rps::ArPredictor;
use gridvm_hostload::{LoadLevel, TraceGenerator};
use gridvm_simcore::rng::SimRng;
use gridvm_simcore::stats::OnlineStats;

fn main() {
    let opts = Options::from_args();
    banner("Extension E3: RPS AR prediction vs naive baselines", &opts);
    let evals = opts.samples_or(if opts.quick { 100 } else { 600 });

    let mut rows = Vec::new();
    for level in [LoadLevel::Light, LoadLevel::Heavy] {
        for horizon in [1usize, 10, 60] {
            let mut rng = SimRng::seed_from(opts.seed).split(&format!("{level}/{horizon}"));
            let trace = TraceGenerator::preset(level).generate(4096 + evals + horizon, &mut rng);
            let xs = trace.samples();
            let long_mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;

            let mut predictor = ArPredictor::new(2, 2048);
            let mut ar_err = OnlineStats::new();
            let mut last_err = OnlineStats::new();
            let mut mean_err = OnlineStats::new();
            for (i, x) in xs.iter().enumerate() {
                if i + horizon < xs.len() && i >= 512 && i < 512 + evals {
                    let truth = xs[i + horizon];
                    if let Ok(model) = predictor.fit() {
                        let pred = predictor.predict(&model, horizon)[horizon - 1].mean;
                        ar_err.record((pred - truth).abs());
                        last_err.record((x - truth).abs());
                        mean_err.record((long_mean - truth).abs());
                    }
                }
                predictor.observe(*x);
            }
            rows.push(vec![
                format!("{level} load, horizon {horizon}s"),
                format!("{:.3}", ar_err.mean()),
                format!("{:.3}", last_err.mean()),
                format!("{:.3}", mean_err.mean()),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &["scenario", "AR(2) MAE", "last-value", "long mean"],
            &rows,
            28
        )
    );
    println!("expected: at 1s the persistence baseline (last value) is near-optimal for");
    println!("a near-random-walk load; AR(2) overtakes it by 10s and dominates at 60s,");
    println!("where the long-run mean is the only other competitive predictor");
}
