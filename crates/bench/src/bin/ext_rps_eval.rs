//! **Extension E3** — RPS prediction quality (Section 3.2
//! "application perspective"): the paper proposes RPS \[11\]
//! time-series prediction as the basis for adaptation decisions. We
//! generate host load at each intensity, fit the AR predictor over a
//! sliding window, and compare its forecast error against the two
//! naive baselines (last value, long-run mean) across horizons —
//! reproducing the qualitative result of the RPS papers: AR wins at
//! short horizons, converges to the mean at long ones.

use gridvm_bench::harness::{
    m, run_main, Experiment, ExperimentReport, Measurement, Options, SampleCtx, Scenario,
};
use gridvm_gridmw::rps::ArPredictor;
use gridvm_hostload::{LoadLevel, TraceGenerator};
use gridvm_simcore::stats::OnlineStats;

const LEVELS: [LoadLevel; 2] = [LoadLevel::Light, LoadLevel::Heavy];
const HORIZONS: [usize; 3] = [1, 10, 60];

struct RpsEvalExtension;

impl Experiment for RpsEvalExtension {
    fn title(&self) -> &str {
        "Extension E3: RPS AR prediction vs naive baselines"
    }

    fn scenarios(&self, _opts: &Options) -> Vec<Scenario> {
        let mut out = Vec::new();
        for level in LEVELS {
            for horizon in HORIZONS {
                let i = out.len();
                out.push(Scenario::new(
                    i,
                    format!("{level} load, horizon {horizon}s"),
                    1,
                ));
            }
        }
        out
    }

    fn run_sample(&self, scenario: &Scenario, ctx: &SampleCtx, opts: &Options) -> Vec<Measurement> {
        let level = LEVELS[scenario.index / HORIZONS.len()];
        let horizon = HORIZONS[scenario.index % HORIZONS.len()];
        let evals = opts.samples_or(if opts.quick { 100 } else { 600 });
        let mut rng = ctx.rng();
        let trace = TraceGenerator::preset(level).generate(4096 + evals + horizon, &mut rng);
        let xs = trace.samples();
        let long_mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;

        let mut predictor = ArPredictor::new(2, 2048);
        let mut ar_err = OnlineStats::new();
        let mut last_err = OnlineStats::new();
        let mut mean_err = OnlineStats::new();
        for (i, x) in xs.iter().enumerate() {
            if i + horizon < xs.len() && i >= 512 && i < 512 + evals {
                let truth = xs[i + horizon];
                if let Ok(model) = predictor.fit() {
                    let pred = predictor.predict(&model, horizon)[horizon - 1].mean;
                    ar_err.record((pred - truth).abs());
                    last_err.record((x - truth).abs());
                    mean_err.record((long_mean - truth).abs());
                }
            }
            predictor.observe(*x);
        }
        vec![
            m("ar2_mae", ar_err.mean()),
            m("last_value_mae", last_err.mean()),
            m("long_mean_mae", mean_err.mean()),
        ]
    }

    fn epilogue(&self, _report: &ExperimentReport, _opts: &Options) -> Option<String> {
        Some(
            "expected: at 1s the persistence baseline (last value) is near-optimal for\n\
             a near-random-walk load; AR(2) overtakes it by 10s and dominates at 60s,\n\
             where the long-run mean is the only other competitive predictor"
                .to_owned(),
        )
    }
}

fn main() {
    run_main(&RpsEvalExtension);
}
