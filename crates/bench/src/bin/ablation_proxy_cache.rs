//! **Ablation A1** — the proxy disk cache for image access
//! (Section 3.1, "image management"): read-only sharing of a master
//! image across N dynamic VM instances, with the proxy's
//! second-level cache on versus off.
//!
//! Expectation: with the proxy on, instance 2..N boot their working
//! sets out of the proxy cache and the image server sees roughly one
//! instance's worth of traffic; with it off, traffic and boot time
//! scale with N.

use gridvm_bench::harness::{
    m, run_main, Experiment, ExperimentReport, Measurement, Options, SampleCtx, Scenario,
};
use gridvm_simcore::time::SimTime;
use gridvm_simcore::units::ByteSize;
use gridvm_storage::disk::{DiskModel, DiskProfile};
use gridvm_storage::image::VmImage;
use gridvm_vfs::mount::{Mount, Transport};
use gridvm_vfs::proxy::{ProxyConfig, VfsProxy};
use gridvm_vfs::server::NfsServer;
use gridvm_vmm::boot::{boot_read_runs, BootProfile};

struct ProxyCacheAblation;

fn instances(opts: &Options) -> usize {
    if opts.quick {
        3
    } else {
        8
    }
}

impl Experiment for ProxyCacheAblation {
    fn title(&self) -> &str {
        "Ablation A1: proxy cache for shared master images (WAN image server)"
    }

    fn scenarios(&self, _opts: &Options) -> Vec<Scenario> {
        vec![
            Scenario::new(0, "proxy cache OFF", 1),
            Scenario::new(1, "proxy cache ON", 1),
        ]
    }

    fn run_sample(
        &self,
        scenario: &Scenario,
        _ctx: &SampleCtx,
        opts: &Options,
    ) -> Vec<Measurement> {
        let proxied = scenario.index == 1;
        let instances = instances(opts);
        let image = VmImage::redhat_guest("rh72");
        // One image server exporting the master image over the WAN;
        // all instances on one compute server share the mount (and
        // thus the proxy).
        let mut server = NfsServer::new(DiskModel::new(DiskProfile::ide_2003()));
        let root = server.fs().root();
        let f = server
            .fs_mut()
            .create_synthetic(
                root,
                "master.img",
                image.disk_size.into(),
                image.content_seed,
                SimTime::ZERO,
            )
            .expect("fresh export");
        // Image proxies are tuned for scattered boot working sets:
        // a cache big enough for the working set plus prefetch
        // residue, and shallow prefetch (boot runs are short).
        let proxy = proxied.then(|| {
            VfsProxy::new(ProxyConfig {
                cache_blocks: (ByteSize::from_mib(512).as_u64() / 8192) as usize,
                prefetch_depth: 2,
                ..ProxyConfig::default()
            })
        });
        let mut mount = Mount::new(Transport::wan(), server, proxy);

        let runs = boot_read_runs(&image, &BootProfile::default());
        let bs = ByteSize::from(image.block_size).as_u64();
        let mut t = SimTime::ZERO;
        let mut per_instance = Vec::new();
        for _ in 0..instances {
            let started = t;
            for (start, len) in &runs {
                let (done, r) = mount.read_range(t, f, start.0 * bs, len * bs);
                r.expect("image readable");
                t = done;
            }
            per_instance.push(t.duration_since(started).as_secs_f64());
        }
        let first = per_instance[0];
        let rest_avg =
            per_instance[1..].iter().sum::<f64>() / (per_instance.len() - 1).max(1) as f64;
        vec![
            m("first_instance_s", first),
            m("rest_avg_s", rest_avg),
            m("server_rpcs", mount.rpcs_sent() as f64),
        ]
    }

    fn epilogue(&self, _report: &ExperimentReport, opts: &Options) -> Option<String> {
        Some(format!(
            "expected: ON cuts instance 2..N load time and server RPCs by ~{}x",
            instances(opts)
        ))
    }
}

fn main() {
    run_main(&ProxyCacheAblation);
}
