//! **Ablation A4** — VM assists (Section 2.3): the paper argues VMM
//! overheads "can be made smaller with implementation
//! optimizations", citing IBM's VM assists. We re-run the Table 1
//! workloads and the Figure 1 heavy-load scenario under the baseline
//! VMware-3.0a-era cost model and under a model with assists, and
//! report how much of the virtualization tax the optimizations
//! recover.

use gridvm_bench::harness::{banner, render_table, Options};
use gridvm_host::{HostConfig, HostSim, TaskSpec};
use gridvm_hostload::{LoadLevel, TraceGenerator, TracePlayback};
use gridvm_sched::SchedulerKind;
use gridvm_simcore::rng::SimRng;
use gridvm_simcore::stats::OnlineStats;
use gridvm_simcore::time::{SimDuration, SimTime};
use gridvm_simcore::units::{ByteSize, CpuWork};
use gridvm_storage::disk::{DiskModel, DiskProfile};
use gridvm_vmm::exec::{run_app, ExecMode, LocalDiskStorage};
use gridvm_vmm::VirtCostModel;
use gridvm_workloads::{spec, AppProfile};

fn shrink(app: &AppProfile, factor: u64) -> AppProfile {
    AppProfile::new(app.name(), app.user_work().mul_f64(1.0 / factor as f64))
        .with_syscalls(app.syscalls() / factor)
        .with_reads(
            ByteSize::from_bytes(app.read_bytes().as_u64() / factor),
            app.io_pattern(),
        )
        .with_writes(ByteSize::from_bytes(app.write_bytes().as_u64() / factor))
        .with_memory_pressure(app.memory_pressure())
}

fn overhead(app: &AppProfile, model: &VirtCostModel, seed: u64) -> f64 {
    let run = |mode: ExecMode| {
        let mut disk = DiskModel::new(DiskProfile::ide_2003());
        run_app(
            app,
            mode,
            model,
            &mut LocalDiskStorage::new(&mut disk),
            spec::MACRO_CLOCK_HZ,
            SimTime::ZERO,
            &mut SimRng::seed_from(seed),
        )
    };
    run(ExecMode::Virtualized).overhead_vs(&run(ExecMode::Native)) * 100.0
}

fn heavy_load_slowdown(model: &VirtCostModel, samples: usize, seed: u64) -> f64 {
    let config = HostConfig::default();
    let work = CpuWork::from_duration(SimDuration::from_secs(3), config.clock_hz);
    let mut stats = OnlineStats::new();
    for i in 0..samples {
        let root = SimRng::seed_from(seed + i as u64);
        let mut host = HostSim::new(config, SchedulerKind::TimeShare.build(), root.split("s"));
        let trace = TraceGenerator::preset(LoadLevel::Heavy)
            .with_interval(SimDuration::from_millis(250))
            .generate(600, &mut root.split("t"));
        host.set_background(
            TracePlayback::new(trace),
            4,
            TaskSpec::compute(CpuWork::ZERO),
        );
        let id = host.spawn(model.guest_task(work, 0.0));
        let out = host
            .run_until_complete(id, SimDuration::from_secs(120))
            .expect("finishes");
        stats.record(out.slowdown_vs(host.baseline(&model.native_task(work))));
    }
    stats.mean()
}

fn main() {
    let opts = Options::from_args();
    banner(
        "Ablation A4: VM assists vs baseline trap-and-emulate",
        &opts,
    );
    let factor = if opts.quick { 200 } else { 50 };
    let samples = opts.samples_or(100);

    let baseline = VirtCostModel::default();
    let assisted = VirtCostModel::default().with_assists();

    let mut rows = Vec::new();
    for app in [
        shrink(&spec::specseis(), factor),
        shrink(&spec::specclimate(), factor),
    ] {
        let base = overhead(&app, &baseline, opts.seed);
        let fast = overhead(&app, &assisted, opts.seed);
        rows.push(vec![
            format!("{} VM overhead", app.name()),
            format!("{base:.2}%"),
            format!("{fast:.2}%"),
            format!("{:.0}%", (1.0 - fast / base) * 100.0),
        ]);
    }
    let base_slow = heavy_load_slowdown(&baseline, samples, opts.seed);
    let fast_slow = heavy_load_slowdown(&assisted, samples, opts.seed);
    rows.push(vec![
        "heavy-load VM slowdown (Fig 1)".to_owned(),
        format!("{base_slow:.4}"),
        format!("{fast_slow:.4}"),
        format!(
            "{:.0}%",
            (1.0 - (fast_slow - 1.0) / (base_slow - 1.0)) * 100.0
        ),
    ]);
    println!(
        "{}",
        render_table(
            &["metric", "baseline", "with assists", "tax recovered"],
            &rows,
            32
        )
    );
    println!("expected: assists recover about half the VMM tax on the macro workloads;");
    println!("the heavy-load slowdown barely moves because it is queueing, not");
    println!("virtualization — which is itself the paper's Figure 1 point");
}
