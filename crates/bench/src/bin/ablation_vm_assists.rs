//! **Ablation A4** — VM assists (Section 2.3): the paper argues VMM
//! overheads "can be made smaller with implementation
//! optimizations", citing IBM's VM assists. We re-run the Table 1
//! workloads and the Figure 1 heavy-load scenario under the baseline
//! VMware-3.0a-era cost model and under a model with assists, and
//! report how much of the virtualization tax the optimizations
//! recover.

use gridvm_bench::harness::{
    m, run_main, Experiment, ExperimentReport, Measurement, Options, SampleCtx, Scenario,
};
use gridvm_host::{HostConfig, HostSim, TaskSpec};
use gridvm_hostload::{LoadLevel, TraceGenerator, TracePlayback};
use gridvm_sched::SchedulerKind;
use gridvm_simcore::rng::SimRng;
use gridvm_simcore::time::{SimDuration, SimTime};
use gridvm_simcore::units::{ByteSize, CpuWork};
use gridvm_storage::disk::{DiskModel, DiskProfile};
use gridvm_vmm::exec::{run_app, ExecMode, LocalDiskStorage};
use gridvm_vmm::VirtCostModel;
use gridvm_workloads::{spec, AppProfile};

const HEAVY_LOAD: &str = "heavy-load VM slowdown (Fig 1)";

fn shrink(app: &AppProfile, factor: u64) -> AppProfile {
    AppProfile::new(app.name(), app.user_work().mul_f64(1.0 / factor as f64))
        .with_syscalls(app.syscalls() / factor)
        .with_reads(
            ByteSize::from_bytes(app.read_bytes().as_u64() / factor),
            app.io_pattern(),
        )
        .with_writes(ByteSize::from_bytes(app.write_bytes().as_u64() / factor))
        .with_memory_pressure(app.memory_pressure())
}

fn overhead(app: &AppProfile, model: &VirtCostModel, seed: u64) -> f64 {
    let run = |mode: ExecMode| {
        let mut disk = DiskModel::new(DiskProfile::ide_2003());
        run_app(
            app,
            mode,
            model,
            &mut LocalDiskStorage::new(&mut disk),
            spec::MACRO_CLOCK_HZ,
            SimTime::ZERO,
            &mut SimRng::seed_from(seed),
        )
    };
    run(ExecMode::Virtualized).overhead_vs(&run(ExecMode::Native)) * 100.0
}

/// One heavy-load slowdown sample; both cost models replay the same
/// seed so the trace and scheduling noise cancel in the comparison.
fn heavy_load_slowdown(model: &VirtCostModel, seed: u64) -> f64 {
    let config = HostConfig::default();
    let work = CpuWork::from_duration(SimDuration::from_secs(3), config.clock_hz);
    let root = SimRng::seed_from(seed);
    let mut host = HostSim::new(config, SchedulerKind::TimeShare.build(), root.split("s"));
    let trace = TraceGenerator::preset(LoadLevel::Heavy)
        .with_interval(SimDuration::from_millis(250))
        .generate(600, &mut root.split("t"));
    host.set_background(
        TracePlayback::new(trace),
        4,
        TaskSpec::compute(CpuWork::ZERO),
    );
    let id = host.spawn(model.guest_task(work, 0.0));
    let out = host
        .run_until_complete(id, SimDuration::from_secs(120))
        .expect("finishes");
    out.slowdown_vs(host.baseline(&model.native_task(work)))
}

struct VmAssistsAblation;

impl Experiment for VmAssistsAblation {
    fn title(&self) -> &str {
        "Ablation A4: VM assists vs baseline trap-and-emulate"
    }

    fn scenarios(&self, opts: &Options) -> Vec<Scenario> {
        vec![
            Scenario::new(0, format!("{} VM overhead", spec::specseis().name()), 1),
            Scenario::new(1, format!("{} VM overhead", spec::specclimate().name()), 1),
            Scenario::new(2, HEAVY_LOAD, opts.samples_or(100)),
        ]
    }

    fn run_sample(&self, scenario: &Scenario, ctx: &SampleCtx, opts: &Options) -> Vec<Measurement> {
        let baseline = VirtCostModel::default();
        let assisted = VirtCostModel::default().with_assists();
        match scenario.index {
            2 => vec![
                m("baseline", heavy_load_slowdown(&baseline, ctx.seed)),
                m("with_assists", heavy_load_slowdown(&assisted, ctx.seed)),
            ],
            i => {
                let factor = if opts.quick { 200 } else { 50 };
                let app = if i == 0 {
                    shrink(&spec::specseis(), factor)
                } else {
                    shrink(&spec::specclimate(), factor)
                };
                let base = overhead(&app, &baseline, ctx.seed);
                let fast = overhead(&app, &assisted, ctx.seed);
                vec![
                    m("baseline", base),
                    m("with_assists", fast),
                    m("recovered_pct", (1.0 - fast / base) * 100.0),
                ]
            }
        }
    }

    fn epilogue(&self, report: &ExperimentReport, _opts: &Options) -> Option<String> {
        let mut out = String::new();
        if let Some(s) = report.scenario(HEAVY_LOAD) {
            let base = s.mean("baseline");
            let fast = s.mean("with_assists");
            out.push_str(&format!(
                "heavy-load tax recovered: {:.0}% (slowdown {base:.4} -> {fast:.4})\n",
                (1.0 - (fast - 1.0) / (base - 1.0)) * 100.0
            ));
        }
        out.push_str(
            "expected: assists recover about half the VMM tax on the macro workloads;\n\
             the heavy-load slowdown barely moves because it is queueing, not\n\
             virtualization — which is itself the paper's Figure 1 point",
        );
        Some(out)
    }
}

fn main() {
    run_main(&VmAssistsAblation);
}
