//! **Claim C1** (Section 3.1) — "PVFS supports on-demand block
//! transfers with performance within 1% of the underlying NFS file
//! system."
//!
//! We run the same file workload through (a) a plain kernel NFS
//! mount and (b) the same mount with the PVFS proxy interposed, on a
//! LAN (the claim's setting), and report the relative overhead of
//! the proxy crossing.

use gridvm_bench::harness::{
    m, run_main, Experiment, ExperimentReport, Measurement, Options, SampleCtx, Scenario,
};
use gridvm_simcore::rng::SimRng;
use gridvm_simcore::time::SimTime;
use gridvm_storage::disk::{DiskModel, DiskProfile};
use gridvm_vfs::fs::FileHandle;
use gridvm_vfs::mount::{Mount, Transport};
use gridvm_vfs::proxy::{ProxyConfig, VfsProxy};
use gridvm_vfs::server::NfsServer;

const COLD_PLAIN: &str = "cold scan, plain NFS";
const COLD_PROXY: &str = "cold scan, PVFS proxy";
const REREAD_PLAIN: &str = "re-reads, plain NFS";
const REREAD_PROXY: &str = "re-reads, PVFS proxy";

fn megabytes(opts: &Options) -> u64 {
    if opts.quick {
        16
    } else {
        128
    }
}

fn build_mount(proxy: Option<VfsProxy>, megabytes: u64) -> (Mount, FileHandle) {
    let mut server = NfsServer::new(DiskModel::new(DiskProfile::ide_2003()));
    let root = server.fs().root();
    let f = server
        .fs_mut()
        .create_synthetic(
            root,
            "dataset",
            gridvm_simcore::units::ByteSize::from_mib(megabytes),
            77,
            SimTime::ZERO,
        )
        .expect("fresh export");
    (Mount::new(Transport::lan(), server, proxy), f)
}

/// One cold sequential scan of the whole dataset: no reuse, so any
/// difference vs plain NFS is pure proxy indirection cost.
fn cold_scan(mount: &mut Mount, fh: FileHandle, megabytes: u64) -> f64 {
    let size = megabytes * 1024 * 1024;
    let (done, r) = mount.read_range(SimTime::ZERO, fh, 0, size);
    r.expect("scan succeeds");
    done.as_secs_f64()
}

/// Strided re-reads with temporal locality: where the proxy's
/// second-level cache is supposed to win.
fn locality_pass(mount: &mut Mount, fh: FileHandle, megabytes: u64, seed: u64) -> f64 {
    let mut rng = SimRng::seed_from(seed);
    let size = megabytes * 1024 * 1024;
    // Warm with one scan, then measure re-reads only.
    let (mut t, r) = mount.read_range(SimTime::ZERO, fh, 0, size);
    r.expect("warm scan succeeds");
    let started = t;
    for _ in 0..256 {
        let offset = (rng.next_below(size / 2 / 8192)) * 8192;
        let (done, r) = mount.read_range(t, fh, offset, 64 * 1024);
        r.expect("re-read succeeds");
        t = done;
    }
    t.duration_since(started).as_secs_f64()
}

struct PvfsOverheadClaim;

impl Experiment for PvfsOverheadClaim {
    fn title(&self) -> &str {
        "Claim C1: PVFS within ~1% of underlying NFS (LAN)"
    }

    fn scenarios(&self, _opts: &Options) -> Vec<Scenario> {
        [COLD_PLAIN, COLD_PROXY, REREAD_PLAIN, REREAD_PROXY]
            .iter()
            .enumerate()
            .map(|(i, label)| Scenario::new(i, *label, 1))
            .collect()
    }

    fn run_sample(
        &self,
        scenario: &Scenario,
        _ctx: &SampleCtx,
        opts: &Options,
    ) -> Vec<Measurement> {
        let mb = megabytes(opts);
        // Cold scans: prefetch off so the proxy cannot win; caching
        // cannot help a single sequential pass; what remains is the
        // proxy crossing.
        let no_win_proxy = || {
            VfsProxy::new(ProxyConfig {
                prefetch_depth: 0,
                ..ProxyConfig::default()
            })
        };
        // The re-read pattern is derived from the master seed alone
        // (not the scenario lineage) so plain and proxied mounts see
        // the identical access sequence.
        let secs = match scenario.label.as_str() {
            COLD_PLAIN => {
                let (mut mount, fh) = build_mount(None, mb);
                cold_scan(&mut mount, fh, mb)
            }
            COLD_PROXY => {
                let (mut mount, fh) = build_mount(Some(no_win_proxy()), mb);
                cold_scan(&mut mount, fh, mb)
            }
            REREAD_PLAIN => {
                let (mut mount, fh) = build_mount(None, mb);
                locality_pass(&mut mount, fh, mb, opts.seed)
            }
            REREAD_PROXY => {
                let (mut mount, fh) = build_mount(Some(VfsProxy::new(ProxyConfig::default())), mb);
                locality_pass(&mut mount, fh, mb, opts.seed)
            }
            other => unreachable!("unknown scenario {other}"),
        };
        vec![m("time_s", secs)]
    }

    fn epilogue(&self, report: &ExperimentReport, _opts: &Options) -> Option<String> {
        let time = |label: &str| report.scenario(label).map(|s| s.mean("time_s"));
        let (t_plain, t_proxy) = (time(COLD_PLAIN)?, time(COLD_PROXY)?);
        let (r_plain, r_proxy) = (time(REREAD_PLAIN)?, time(REREAD_PROXY)?);
        let overhead = (t_proxy / t_plain - 1.0) * 100.0;
        let proxied = report.scenario(REREAD_PROXY)?;
        let mut out = format!(
            "cold-scan proxy indirection: {overhead:+.2}%; re-reads with proxy: {:+.1}%\n\
             locality proxy: {} hits, {} misses, {} prefetched\n\
             paper claim: on-demand PVFS within ~1% of the underlying NFS (the cold-scan \
             rows);\nthe re-read rows show why Figure 2 deploys the proxy anyway",
            (r_proxy / r_plain - 1.0) * 100.0,
            proxied.metrics.counter("vfs.proxy_hits"),
            proxied.metrics.counter("vfs.proxy_misses"),
            proxied.metrics.counter("vfs.proxy_prefetched"),
        );
        if overhead.abs() >= 1.5 {
            out.push_str(&format!(
                "\nCLAIM VIOLATED: proxy indirection cost {overhead}%"
            ));
        }
        assert!(
            overhead.abs() < 1.5,
            "claim violated: proxy indirection cost {overhead}%"
        );
        Some(out)
    }
}

fn main() {
    run_main(&PvfsOverheadClaim);
}
