//! **Claim C1** (Section 3.1) — "PVFS supports on-demand block
//! transfers with performance within 1% of the underlying NFS file
//! system."
//!
//! We run the same file workload through (a) a plain kernel NFS
//! mount and (b) the same mount with the PVFS proxy interposed, on a
//! LAN (the claim's setting), and report the relative overhead of
//! the proxy crossing.

use gridvm_bench::harness::{banner, render_table, Options};
use gridvm_simcore::rng::SimRng;
use gridvm_simcore::time::SimTime;
use gridvm_storage::disk::{DiskModel, DiskProfile};
use gridvm_vfs::fs::FileHandle;
use gridvm_vfs::mount::{Mount, Transport};
use gridvm_vfs::proxy::{ProxyConfig, VfsProxy};
use gridvm_vfs::server::NfsServer;

fn build_mount(proxy: Option<VfsProxy>, megabytes: u64) -> (Mount, FileHandle) {
    let mut server = NfsServer::new(DiskModel::new(DiskProfile::ide_2003()));
    let root = server.fs().root();
    let f = server
        .fs_mut()
        .create_synthetic(
            root,
            "dataset",
            gridvm_simcore::units::ByteSize::from_mib(megabytes),
            77,
            SimTime::ZERO,
        )
        .expect("fresh export");
    (Mount::new(Transport::lan(), server, proxy), f)
}

/// One cold sequential scan of the whole dataset: no reuse, so any
/// difference vs plain NFS is pure proxy indirection cost.
fn cold_scan(mount: &mut Mount, fh: FileHandle, megabytes: u64) -> f64 {
    let size = megabytes * 1024 * 1024;
    let (done, r) = mount.read_range(SimTime::ZERO, fh, 0, size);
    r.expect("scan succeeds");
    done.as_secs_f64()
}

/// Strided re-reads with temporal locality: where the proxy's
/// second-level cache is supposed to win.
fn locality_pass(mount: &mut Mount, fh: FileHandle, megabytes: u64, seed: u64) -> f64 {
    let mut rng = SimRng::seed_from(seed);
    let size = megabytes * 1024 * 1024;
    // Warm with one scan, then measure re-reads only.
    let (mut t, r) = mount.read_range(SimTime::ZERO, fh, 0, size);
    r.expect("warm scan succeeds");
    let started = t;
    for _ in 0..256 {
        let offset = (rng.next_below(size / 2 / 8192)) * 8192;
        let (done, r) = mount.read_range(t, fh, offset, 64 * 1024);
        r.expect("re-read succeeds");
        t = done;
    }
    t.duration_since(started).as_secs_f64()
}

fn main() {
    let opts = Options::from_args();
    banner("Claim C1: PVFS within ~1% of underlying NFS (LAN)", &opts);
    let megabytes = if opts.quick { 16 } else { 128 };

    // --- the paper's claim: indirection overhead on a cold scan ------
    // Prefetch off so the proxy cannot win; caching cannot help a
    // single sequential pass; what remains is the proxy crossing.
    let no_win_proxy = VfsProxy::new(ProxyConfig {
        prefetch_depth: 0,
        ..ProxyConfig::default()
    });
    let (mut plain, fh) = build_mount(None, megabytes);
    let t_plain = cold_scan(&mut plain, fh, megabytes);
    let (mut proxied, fh2) = build_mount(Some(no_win_proxy), megabytes);
    let t_proxy = cold_scan(&mut proxied, fh2, megabytes);
    let overhead = (t_proxy / t_plain - 1.0) * 100.0;

    // --- and the reason to deploy it anyway: locality wins -----------
    let (mut plain2, fh3) = build_mount(None, megabytes);
    let reread_plain = locality_pass(&mut plain2, fh3, megabytes, opts.seed);
    let (mut proxied2, fh4) = build_mount(Some(VfsProxy::new(ProxyConfig::default())), megabytes);
    let reread_proxy = locality_pass(&mut proxied2, fh4, megabytes, opts.seed);

    let rows = vec![
        vec![
            "cold scan, plain NFS".to_owned(),
            format!("{t_plain:.2}"),
            "—".to_owned(),
        ],
        vec![
            "cold scan, PVFS proxy".to_owned(),
            format!("{t_proxy:.2}"),
            format!("{overhead:+.2}%"),
        ],
        vec![
            "re-reads, plain NFS".to_owned(),
            format!("{reread_plain:.2}"),
            "—".to_owned(),
        ],
        vec![
            "re-reads, PVFS proxy".to_owned(),
            format!("{reread_proxy:.2}"),
            format!("{:+.1}%", (reread_proxy / reread_plain - 1.0) * 100.0),
        ],
    ];
    println!(
        "{}",
        render_table(&["configuration", "time (s)", "overhead"], &rows, 24)
    );
    let proxy_stats = proxied2.proxy().expect("proxied mount has a proxy");
    println!(
        "locality proxy: {} hits, {} misses, {} prefetched",
        proxy_stats.hits(),
        proxy_stats.misses(),
        proxy_stats.prefetched()
    );
    println!("paper claim: on-demand PVFS within ~1% of the underlying NFS (the cold-scan rows);");
    println!("the re-read rows show why Figure 2 deploys the proxy anyway");
    assert!(
        overhead.abs() < 1.5,
        "claim violated: proxy indirection cost {overhead}%"
    );
}
