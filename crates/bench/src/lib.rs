//! # gridvm-bench
//!
//! The reproduction harness: one binary per table/figure of the
//! paper plus claim checks and ablations. See `DESIGN.md` §4 for the
//! experiment index; each binary prints the same rows/series the
//! paper reports.
//!
//! Binaries (all accept `--seed N`, `--samples N`, `--quick`,
//! `--threads N` and `--json PATH`; replications are fanned out by
//! [`gridvm_simcore::replication::ReplicationRunner`] and results are
//! bit-identical for every `--threads` value):
//!
//! * `fig1_micro` — Figure 1: test-task slowdown under background
//!   load, 12 scenarios.
//! * `table1_macro` — Table 1: SPECseis/SPECclimate user/sys/total
//!   and overheads across physical / VM-local / VM-PVFS.
//! * `table2_startup` — Table 2: VM startup statistics across
//!   reboot/restore × persistent / DiskFS / LoopbackNFS.
//! * `claim_pvfs_overhead` — Section 3.1 claim: on-demand PVFS block
//!   access within ~1% of plain NFS.
//! * `ablation_proxy_cache` — proxy cache/prefetch on vs off for
//!   shared-image instantiation.
//! * `ablation_schedulers` — scheduler families enforcing an owner
//!   reserve against a greedy grid VM.
//! * `ablation_overlay` — overlay re-routing vs direct tunnels on a
//!   degraded path.
//! * `ablation_vm_assists` — assisted vs baseline VMM cost models.
//! * `ext_migration` — whole-environment migration phase breakdown.
//! * `ext_batch_vm` — Table 2 startup modes as batch-throughput cost.
//! * `ext_rps_eval` — RPS AR prediction vs naive baselines.
//! * `ext_contention` — concurrent instantiation on one VM host.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod regional;
