//! Criterion bench: discrete-event engine throughput — event
//! scheduling, cancellation, and the RNG the whole suite leans on.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gridvm_simcore::engine::Engine;
use gridvm_simcore::event::EventQueue;
use gridvm_simcore::rng::SimRng;
use gridvm_simcore::time::{SimDuration, SimTime};

fn bench_engine(c: &mut Criterion) {
    c.bench_function("engine: 10k chained events", |b| {
        b.iter(|| {
            let mut en: Engine<u64> = Engine::new();
            let mut world = 0u64;
            fn chain(w: &mut u64, en: &mut Engine<u64>) {
                *w += 1;
                if *w < 10_000 {
                    en.schedule_in(SimDuration::from_micros(10), chain);
                }
            }
            en.schedule_now(chain);
            en.run(&mut world);
            assert_eq!(world, 10_000);
            world
        })
    });

    c.bench_function("engine: 10k chained events, inline arg dispatch", |b| {
        // The allocation-free path: the countdown rides in the
        // event's inline argument word instead of a closure capture.
        b.iter(|| {
            let mut en: Engine<u64> = Engine::new();
            let mut world = 0u64;
            fn chain(target: u64, w: &mut u64, en: &mut Engine<u64>) {
                *w += 1;
                if *w < target {
                    en.schedule_arg_in(SimDuration::from_micros(10), target, chain);
                }
            }
            en.schedule_arg_now(10_000, chain);
            en.run(&mut world);
            assert_eq!(world, 10_000);
            world
        })
    });

    c.bench_function("event queue: push/pop 10k with cancellations", |b| {
        b.iter_batched(
            || {
                let mut q = EventQueue::new();
                let ids: Vec<_> = (0..10_000u64)
                    .map(|i| q.push(SimTime::from_nanos(i * 37 % 10_000), i))
                    .collect();
                (q, ids)
            },
            |(mut q, ids)| {
                for id in ids.iter().step_by(3) {
                    q.cancel(*id);
                }
                let mut n = 0;
                while q.pop().is_some() {
                    n += 1;
                }
                n
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("rng: 100k doubles", |b| {
        b.iter(|| {
            let mut rng = SimRng::seed_from(1);
            let mut acc = 0.0;
            for _ in 0..100_000 {
                acc += rng.next_f64();
            }
            acc
        })
    });
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
