//! Criterion bench: scheduler decision cost per quantum across the
//! five families, at realistic run-queue depths.

use criterion::{criterion_group, criterion_main, Criterion};
use gridvm_sched::{SchedulerKind, TaskId, TaskParams};
use gridvm_simcore::rng::SimRng;
use gridvm_simcore::time::{SimDuration, SimTime};

fn bench_schedulers(c: &mut Criterion) {
    for kind in SchedulerKind::ALL {
        for depth in [4usize, 32] {
            let name = format!("{kind}: select+charge, {depth} runnable");
            c.bench_function(&name, |b| {
                let mut s = kind.build();
                let ids: Vec<TaskId> = (0..depth as u64).map(TaskId).collect();
                for id in &ids {
                    let params = if kind == SchedulerKind::Edf && id.0 % 4 == 0 {
                        TaskParams::with_reservation(
                            SimDuration::from_millis(100),
                            SimDuration::from_millis(2),
                        )
                    } else {
                        TaskParams::with_weight(100 + id.0 as u32)
                    };
                    s.add_task(*id, params);
                }
                let mut rng = SimRng::seed_from(7);
                let quantum = SimDuration::from_millis(10);
                let mut now = SimTime::ZERO;
                b.iter(|| {
                    let picked = s.select(&ids, 2, now, quantum, &mut rng);
                    for id in &picked {
                        s.charge(*id, quantum);
                    }
                    now += quantum;
                    picked.len()
                })
            });
        }
    }
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);
