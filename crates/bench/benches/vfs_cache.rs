//! Criterion bench: the storage/VFS hot paths — buffer-cache
//! operations, proxy hit/miss handling, and end-to-end mount reads.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gridvm_simcore::time::SimTime;
use gridvm_simcore::units::ByteSize;
use gridvm_storage::block::BlockAddr;
use gridvm_storage::cache::BufferCache;
use gridvm_storage::disk::{DiskModel, DiskProfile};
use gridvm_vfs::fs::FileHandle;
use gridvm_vfs::mount::{Mount, Transport};
use gridvm_vfs::proxy::{ProxyConfig, VfsProxy};
use gridvm_vfs::server::NfsServer;

fn bench_vfs(c: &mut Criterion) {
    c.bench_function("buffer cache: 100k inserts at capacity", |b| {
        b.iter_batched(
            || BufferCache::new(4096),
            |mut cache| {
                for i in 0..100_000u64 {
                    if !cache.touch(BlockAddr(i % 8192)) {
                        cache.insert(BlockAddr(i % 8192));
                    }
                }
                cache.len()
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("proxy: 10k sequential read misses w/ prefetch", |b| {
        b.iter_batched(
            || VfsProxy::new(ProxyConfig::default()),
            |mut proxy| {
                let fh = FileHandle(1);
                let mut total = 0usize;
                for i in 0..10_000u64 {
                    let offset = i * 8192;
                    if proxy
                        .try_read_hit(fh, offset, 8192, SimTime::ZERO)
                        .is_none()
                    {
                        let pf = proxy.note_read_miss(fh, offset, 8192, SimTime::ZERO);
                        for (o, l) in pf {
                            proxy.install(fh, o, l);
                        }
                        total += 1;
                    }
                }
                total
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("mount: 4 MiB sequential read over LAN + proxy", |b| {
        b.iter_batched(
            || {
                let mut server = NfsServer::new(DiskModel::new(DiskProfile::ide_2003()));
                let root = server.fs().root();
                let f = server
                    .fs_mut()
                    .create_synthetic(root, "f", ByteSize::from_mib(8), 3, SimTime::ZERO)
                    .expect("fresh export");
                (
                    Mount::new(
                        Transport::lan(),
                        server,
                        Some(VfsProxy::new(ProxyConfig::default())),
                    ),
                    f,
                )
            },
            |(mut mount, f)| {
                let (done, r) = mount.read_range(SimTime::ZERO, f, 0, 4 * 1024 * 1024);
                r.expect("read succeeds");
                done
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_vfs);
criterion_main!(benches);
