//! Criterion bench: overlay route computation and re-optimization at
//! realistic overlay sizes.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gridvm_simcore::time::{SimDuration, SimTime};
use gridvm_vnet::overlay::Overlay;

fn full_mesh(n: u32) -> Overlay {
    let mut ov = Overlay::new();
    let nodes: Vec<_> = (0..n).map(|_| ov.add_node()).collect();
    ov.probe_mesh(SimTime::ZERO, |a, b| {
        Some(SimDuration::from_millis(
            5 + (u64::from(a.0) * 31 + u64::from(b.0) * 17) % 80,
        ))
    });
    assert_eq!(ov.nodes().len(), nodes.len());
    ov
}

fn bench_overlay(c: &mut Criterion) {
    for n in [8u32, 32] {
        c.bench_function(&format!("overlay: all-pairs routes, {n} nodes"), |b| {
            b.iter_batched(
                || full_mesh(n),
                |mut ov| {
                    let nodes = ov.nodes().to_vec();
                    let mut total = SimDuration::ZERO;
                    for a in &nodes {
                        for z in &nodes {
                            if a != z {
                                total += ov.route(*a, *z).expect("connected").latency;
                            }
                        }
                    }
                    total
                },
                BatchSize::SmallInput,
            )
        });
    }

    c.bench_function("overlay: cached routed packet churn, 24 nodes", |b| {
        // Per-packet route lookups dominated by cache hits, with a
        // measurement update every 256 packets forcing SPT/pair
        // recomputation — the routed-traffic shape of the ablation
        // runs.
        b.iter_batched(
            || full_mesh(24),
            |mut ov| {
                let nodes = ov.nodes().to_vec();
                let mut total = SimDuration::ZERO;
                for i in 0..10_000usize {
                    if i % 256 == 0 {
                        let a = nodes[i / 256 % nodes.len()];
                        let z = nodes[(i / 256 * 5 + 1) % nodes.len()];
                        if a != z {
                            ov.update_measurement(
                                a,
                                z,
                                SimDuration::from_millis(5 + (i as u64 % 80)),
                            );
                        }
                    }
                    let a = nodes[i * 7919 % nodes.len()];
                    let z = nodes[(i * 104_729 + 1) % nodes.len()];
                    if a != z {
                        total += ov.route_ref(a, z).expect("connected").latency;
                    }
                }
                total
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("overlay: degrade + reroute cycle, 16 nodes", |b| {
        b.iter_batched(
            || full_mesh(16),
            |mut ov| {
                let nodes = ov.nodes().to_vec();
                for i in 0..16 {
                    let a = nodes[i % nodes.len()];
                    let z = nodes[(i * 7 + 3) % nodes.len()];
                    if a != z {
                        ov.update_measurement(a, z, SimDuration::from_millis(500));
                        let _ = ov.route(a, z).expect("connected");
                    }
                }
                ov.reroutes()
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_overlay);
criterion_main!(benches);
