//! Point-to-point network links with latency, bandwidth, queueing
//! and an up/down state — the underlay the tunnels and overlay run
//! over.

use gridvm_simcore::server::{Pipe, ServiceGrant};
use gridvm_simcore::time::{SimDuration, SimTime};
use gridvm_simcore::units::{Bandwidth, ByteSize};

/// Errors from link transmission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LinkError {
    /// The link is administratively or physically down.
    Down,
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "link is down")
    }
}

impl std::error::Error for LinkError {}

/// A point-to-point link.
///
/// ```
/// use gridvm_vnet::link::NetLink;
/// use gridvm_simcore::time::{SimDuration, SimTime};
/// use gridvm_simcore::units::{Bandwidth, ByteSize};
///
/// let mut l = NetLink::new(SimDuration::from_millis(5), Bandwidth::from_mbit_per_sec(100.0));
/// let g = l.send(SimTime::ZERO, ByteSize::from_kib(1)).unwrap();
/// assert!(g.finish > SimTime::ZERO);
/// ```
#[derive(Clone, Debug)]
pub struct NetLink {
    pipe: Pipe,
    latency: SimDuration,
    bandwidth: Bandwidth,
    up: bool,
    outage: Option<(SimTime, SimTime)>,
}

impl NetLink {
    /// Creates an up link.
    pub fn new(latency: SimDuration, bandwidth: Bandwidth) -> Self {
        NetLink {
            pipe: Pipe::new(latency, bandwidth),
            latency,
            bandwidth,
            up: true,
            outage: None,
        }
    }

    /// One-way propagation latency.
    pub fn latency(&self) -> SimDuration {
        self.latency
    }

    /// Link bandwidth.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }

    /// Whether the link is administratively up (a scheduled outage
    /// window may still reject traffic — see
    /// [`up_at`](NetLink::up_at)).
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Whether the link would carry traffic at `now`: administratively
    /// up and outside any scheduled outage window.
    pub fn up_at(&self, now: SimTime) -> bool {
        self.up
            && !self
                .outage
                .is_some_and(|(from, until)| now >= from && now < until)
    }

    /// Schedules a partition window (fault injection): sends inside
    /// `[from, until)` fail with [`LinkError::Down`] and the link
    /// heals by itself afterwards. A later call replaces the window.
    ///
    /// # Panics
    ///
    /// Panics when the window is empty (`until <= from`).
    pub fn schedule_outage(&mut self, from: SimTime, until: SimTime) {
        assert!(until > from, "empty outage window");
        self.outage = Some((from, until));
    }

    /// End of the scheduled outage window covering `now`, if one does.
    pub fn outage_until(&self, now: SimTime) -> Option<SimTime> {
        self.outage
            .filter(|(from, until)| now >= *from && now < *until)
            .map(|(_, until)| until)
    }

    /// Takes the link down (failure injection).
    pub fn set_down(&mut self) {
        self.up = false;
    }

    /// Restores the link. The queue state survives (packets in
    /// flight were lost, new ones queue fresh).
    pub fn set_up(&mut self) {
        self.up = true;
    }

    /// Degrades the link to a new latency/bandwidth (path
    /// congestion); queued history is preserved.
    pub fn degrade(&mut self, latency: SimDuration, bandwidth: Bandwidth) {
        self.latency = latency;
        self.bandwidth = bandwidth;
        self.pipe = Pipe::new(latency, bandwidth);
        // note: outstanding queue time is dropped; degradation in
        // this model applies to subsequent traffic.
    }

    /// Transmits `size` bytes at `now`.
    ///
    /// # Errors
    ///
    /// [`LinkError::Down`] when the link is down or inside a
    /// scheduled outage window.
    pub fn send(&mut self, now: SimTime, size: ByteSize) -> Result<ServiceGrant, LinkError> {
        if !self.up_at(now) {
            return Err(LinkError::Down);
        }
        Ok(self.pipe.send(now, size))
    }

    /// Bytes carried so far.
    pub fn bytes_sent(&self) -> ByteSize {
        self.pipe.bytes_sent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_matches_latency_plus_serialization() {
        let mut l = NetLink::new(
            SimDuration::from_millis(10),
            Bandwidth::from_mbit_per_sec(8.0),
        );
        // 1 MB at 1 MB/s (8 Mbit) = 1 s + 10 ms.
        let g = l
            .send(SimTime::ZERO, ByteSize::from_bytes(1_000_000))
            .unwrap();
        assert!((g.finish.as_secs_f64() - 1.01).abs() < 1e-9);
    }

    #[test]
    fn down_links_reject_traffic() {
        let mut l = NetLink::new(
            SimDuration::from_millis(1),
            Bandwidth::from_mbit_per_sec(10.0),
        );
        l.set_down();
        assert!(!l.is_up());
        assert_eq!(
            l.send(SimTime::ZERO, ByteSize::from_bytes(100)),
            Err(LinkError::Down)
        );
        l.set_up();
        assert!(l.send(SimTime::ZERO, ByteSize::from_bytes(100)).is_ok());
    }

    #[test]
    fn degradation_slows_subsequent_traffic() {
        let mut l = NetLink::new(
            SimDuration::from_millis(1),
            Bandwidth::from_mbit_per_sec(100.0),
        );
        let fast = l.send(SimTime::ZERO, ByteSize::from_kib(100)).unwrap();
        l.degrade(
            SimDuration::from_millis(50),
            Bandwidth::from_mbit_per_sec(1.0),
        );
        let slow = l.send(fast.finish, ByteSize::from_kib(100)).unwrap();
        assert!(
            slow.latency_from(fast.finish) > fast.latency_from(SimTime::ZERO) * 10,
            "degraded link must be much slower"
        );
    }

    #[test]
    fn scheduled_outage_rejects_then_self_heals() {
        let mut l = NetLink::new(
            SimDuration::from_millis(1),
            Bandwidth::from_mbit_per_sec(10.0),
        );
        let from = SimTime::from_secs(10);
        let until = SimTime::from_secs(20);
        l.schedule_outage(from, until);
        // Before the window: fine.
        assert!(l.send(SimTime::from_secs(5), ByteSize::from_kib(1)).is_ok());
        // Inside: partitioned, with the heal time visible.
        assert_eq!(
            l.send(SimTime::from_secs(15), ByteSize::from_kib(1)),
            Err(LinkError::Down)
        );
        assert_eq!(l.outage_until(SimTime::from_secs(15)), Some(until));
        assert!(l.is_up(), "outage is not an administrative down");
        // At the heal boundary and after: fine again, no manual set_up.
        assert!(l.send(until, ByteSize::from_kib(1)).is_ok());
        assert_eq!(l.outage_until(until), None);
    }

    #[test]
    fn accounting_accumulates() {
        let mut l = NetLink::new(
            SimDuration::from_millis(1),
            Bandwidth::from_mbit_per_sec(10.0),
        );
        l.send(SimTime::ZERO, ByteSize::from_kib(4)).unwrap();
        l.send(SimTime::ZERO, ByteSize::from_kib(4)).unwrap();
        assert_eq!(l.bytes_sent(), ByteSize::from_kib(8));
    }
}
