//! The self-optimizing overlay among remote VMs — the "natural
//! extension" of Section 3.3, in the style of Resilient Overlay
//! Networks \[2\].
//!
//! Overlay nodes measure the underlay latency between each pair
//! (probing), and route application traffic over the lowest-latency
//! overlay path — possibly through intermediate VMs — re-optimizing
//! whenever measurements change. The ablation bench compares direct
//! underlay paths against overlay routing when a path degrades.

use std::collections::{BTreeMap, BinaryHeap};

use gridvm_simcore::time::{SimDuration, SimTime};

/// Identifies an overlay node (a VM or a user site).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

/// Errors from overlay operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OverlayError {
    /// Node not part of the overlay.
    UnknownNode(
        /// The offending node.
        NodeId,
    ),
    /// No path exists (partition).
    Unreachable {
        /// Source node.
        from: NodeId,
        /// Destination node.
        to: NodeId,
    },
}

impl std::fmt::Display for OverlayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OverlayError::UnknownNode(n) => write!(f, "unknown overlay node {n}"),
            OverlayError::Unreachable { from, to } => {
                write!(f, "no overlay path from {from} to {to}")
            }
        }
    }
}

impl std::error::Error for OverlayError {}

/// A computed overlay route.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Route {
    /// The node sequence, source first, destination last.
    pub hops: Vec<NodeId>,
    /// Total measured latency along the path.
    pub latency: SimDuration,
}

impl Route {
    /// Number of intermediate relay nodes.
    pub fn relays(&self) -> usize {
        self.hops.len().saturating_sub(2)
    }
}

/// The overlay: nodes plus a mesh of measured pairwise latencies.
///
/// ```
/// use gridvm_vnet::overlay::{NodeId, Overlay};
/// use gridvm_simcore::time::{SimDuration, SimTime};
///
/// let mut ov = Overlay::new();
/// let (a, b, c) = (ov.add_node(), ov.add_node(), ov.add_node());
/// ov.update_measurement(a, b, SimDuration::from_millis(100));
/// ov.update_measurement(a, c, SimDuration::from_millis(10));
/// ov.update_measurement(c, b, SimDuration::from_millis(10));
/// let route = ov.route(a, b)?;
/// assert_eq!(route.hops, vec![a, c, b], "relay through c beats direct");
/// # Ok::<(), gridvm_vnet::overlay::OverlayError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct Overlay {
    next_id: u32,
    nodes: Vec<NodeId>,
    /// Directed measured latency. Probes set both directions.
    links: BTreeMap<(NodeId, NodeId), SimDuration>,
    reroutes: u64,
    last_routes: BTreeMap<(NodeId, NodeId), Vec<NodeId>>,
}

impl Overlay {
    /// Creates an empty overlay.
    pub fn new() -> Self {
        Overlay::default()
    }

    /// Adds a node (a VM joining the overlay) and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        self.nodes.push(id);
        id
    }

    /// Removes a node and every measurement touching it (VM
    /// shutdown/migration away).
    pub fn remove_node(&mut self, node: NodeId) {
        self.nodes.retain(|n| *n != node);
        self.links.retain(|(a, b), _| *a != node && *b != node);
        self.last_routes
            .retain(|(a, b), _| *a != node && *b != node);
    }

    /// The current node set.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Records a (symmetric) latency measurement between two nodes —
    /// the result of a probe.
    pub fn update_measurement(&mut self, a: NodeId, b: NodeId, latency: SimDuration) {
        self.links.insert((a, b), latency);
        self.links.insert((b, a), latency);
    }

    /// Marks the path between two nodes unusable (probe timed out).
    pub fn mark_down(&mut self, a: NodeId, b: NodeId) {
        self.links.remove(&(a, b));
        self.links.remove(&(b, a));
    }

    /// The measured direct latency, if a usable measurement exists.
    pub fn direct_latency(&self, a: NodeId, b: NodeId) -> Option<SimDuration> {
        self.links.get(&(a, b)).copied()
    }

    /// Times the overlay has changed its answer for a pair.
    pub fn reroutes(&self) -> u64 {
        self.reroutes
    }

    /// Computes the minimum-latency route from `from` to `to`
    /// (Dijkstra over the measurement mesh).
    ///
    /// # Errors
    ///
    /// Unknown nodes or no path.
    pub fn route(&mut self, from: NodeId, to: NodeId) -> Result<Route, OverlayError> {
        if !self.nodes.contains(&from) {
            return Err(OverlayError::UnknownNode(from));
        }
        if !self.nodes.contains(&to) {
            return Err(OverlayError::UnknownNode(to));
        }
        if from == to {
            return Ok(Route {
                hops: vec![from],
                latency: SimDuration::ZERO,
            });
        }
        let mut dist: BTreeMap<NodeId, SimDuration> = BTreeMap::new();
        let mut prev: BTreeMap<NodeId, NodeId> = BTreeMap::new();
        let mut heap: BinaryHeap<std::cmp::Reverse<(SimDuration, NodeId)>> = BinaryHeap::new();
        dist.insert(from, SimDuration::ZERO);
        heap.push(std::cmp::Reverse((SimDuration::ZERO, from)));
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            if dist.get(&u).is_some_and(|best| *best < d) {
                continue;
            }
            if u == to {
                break;
            }
            for ((a, b), w) in &self.links {
                if *a != u {
                    continue;
                }
                let nd = d + *w;
                if dist.get(b).is_none_or(|best| nd < *best) {
                    dist.insert(*b, nd);
                    prev.insert(*b, u);
                    heap.push(std::cmp::Reverse((nd, *b)));
                }
            }
        }
        let latency = *dist
            .get(&to)
            .ok_or(OverlayError::Unreachable { from, to })?;
        let mut hops = vec![to];
        let mut cur = to;
        while cur != from {
            cur = prev[&cur];
            hops.push(cur);
        }
        hops.reverse();
        // Track route changes for the self-optimization metric.
        let key = (from, to);
        if let Some(old) = self.last_routes.get(&key) {
            if *old != hops {
                self.reroutes += 1;
            }
        }
        self.last_routes.insert(key, hops.clone());
        Ok(Route { hops, latency })
    }

    /// Full-mesh probe convenience: installs `latency(a, b)` for all
    /// pairs from a caller-provided measurement function.
    pub fn probe_mesh<F>(&mut self, _now: SimTime, mut measure: F)
    where
        F: FnMut(NodeId, NodeId) -> Option<SimDuration>,
    {
        let nodes = self.nodes.clone();
        for (i, a) in nodes.iter().enumerate() {
            for b in &nodes[i + 1..] {
                match measure(*a, *b) {
                    Some(lat) => self.update_measurement(*a, *b, lat),
                    None => self.mark_down(*a, *b),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn triangle() -> (Overlay, NodeId, NodeId, NodeId) {
        let mut ov = Overlay::new();
        let a = ov.add_node();
        let b = ov.add_node();
        let c = ov.add_node();
        ov.update_measurement(a, b, ms(50));
        ov.update_measurement(a, c, ms(10));
        ov.update_measurement(c, b, ms(10));
        (ov, a, b, c)
    }

    #[test]
    fn direct_route_when_it_is_best() {
        let (mut ov, a, b, _) = triangle();
        ov.update_measurement(a, b, ms(5));
        let r = ov.route(a, b).unwrap();
        assert_eq!(r.hops, vec![a, b]);
        assert_eq!(r.latency, ms(5));
        assert_eq!(r.relays(), 0);
    }

    #[test]
    fn relay_route_when_direct_is_slow() {
        let (mut ov, a, b, c) = triangle();
        let r = ov.route(a, b).unwrap();
        assert_eq!(r.hops, vec![a, c, b]);
        assert_eq!(r.latency, ms(20));
        assert_eq!(r.relays(), 1);
    }

    #[test]
    fn degradation_triggers_reroute() {
        let (mut ov, a, b, _c) = triangle();
        ov.update_measurement(a, b, ms(5));
        let _ = ov.route(a, b).unwrap();
        assert_eq!(ov.reroutes(), 0);
        // The direct path congests: overlay self-optimizes.
        ov.update_measurement(a, b, ms(500));
        let r = ov.route(a, b).unwrap();
        assert_eq!(r.relays(), 1);
        assert_eq!(ov.reroutes(), 1);
    }

    #[test]
    fn down_path_routes_around() {
        let (mut ov, a, b, c) = triangle();
        ov.mark_down(a, b);
        let r = ov.route(a, b).unwrap();
        assert_eq!(r.hops, vec![a, c, b]);
    }

    #[test]
    fn partition_is_reported() {
        let (mut ov, a, b, c) = triangle();
        ov.mark_down(a, b);
        ov.mark_down(a, c);
        let err = ov.route(a, b).unwrap_err();
        assert_eq!(err, OverlayError::Unreachable { from: a, to: b });
        assert!(err.to_string().contains("no overlay path"));
        let _ = c;
    }

    #[test]
    fn unknown_and_self_routes() {
        let (mut ov, a, _, _) = triangle();
        assert!(matches!(
            ov.route(a, NodeId(99)),
            Err(OverlayError::UnknownNode(_))
        ));
        let r = ov.route(a, a).unwrap();
        assert_eq!(r.hops, vec![a]);
        assert_eq!(r.latency, SimDuration::ZERO);
    }

    #[test]
    fn node_removal_cleans_measurements() {
        let (mut ov, a, b, c) = triangle();
        ov.remove_node(c);
        let r = ov.route(a, b).unwrap();
        assert_eq!(r.hops, vec![a, b], "relay is gone, direct only");
        assert_eq!(ov.nodes().len(), 2);
    }

    #[test]
    fn probe_mesh_populates_all_pairs() {
        let mut ov = Overlay::new();
        let nodes: Vec<NodeId> = (0..5).map(|_| ov.add_node()).collect();
        ov.probe_mesh(SimTime::ZERO, |a, b| Some(ms(u64::from(a.0 + b.0 + 1))));
        for (i, a) in nodes.iter().enumerate() {
            for b in &nodes[i + 1..] {
                assert!(ov.direct_latency(*a, *b).is_some());
            }
        }
        let r = ov.route(nodes[0], nodes[4]).unwrap();
        assert!(!r.hops.is_empty());
    }

    #[test]
    fn multi_hop_chains_compose() {
        // A line topology: 0-1-2-3, no shortcuts.
        let mut ov = Overlay::new();
        let n: Vec<NodeId> = (0..4).map(|_| ov.add_node()).collect();
        ov.update_measurement(n[0], n[1], ms(10));
        ov.update_measurement(n[1], n[2], ms(10));
        ov.update_measurement(n[2], n[3], ms(10));
        let r = ov.route(n[0], n[3]).unwrap();
        assert_eq!(r.hops.len(), 4);
        assert_eq!(r.latency, ms(30));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The overlay route is never worse than the direct
        /// measurement when one exists (self-optimization soundness).
        #[test]
        fn overlay_never_loses_to_direct(weights in proptest::collection::vec(1u64..1000, 15)) {
            let mut ov = Overlay::new();
            let nodes: Vec<NodeId> = (0..6).map(|_| ov.add_node()).collect();
            let mut w = weights.into_iter();
            for i in 0..6 {
                for j in (i + 1)..6 {
                    if let Some(ms_w) = w.next() {
                        ov.update_measurement(nodes[i], nodes[j], SimDuration::from_millis(ms_w));
                    }
                }
            }
            for i in 0..6 {
                for j in 0..6 {
                    if i == j { continue; }
                    if let Some(direct) = ov.direct_latency(nodes[i], nodes[j]) {
                        let r = ov.route(nodes[i], nodes[j]).unwrap();
                        prop_assert!(r.latency <= direct,
                            "route {:?} worse than direct {}", r, direct);
                    }
                }
            }
        }
    }
}
