//! The self-optimizing overlay among remote VMs — the "natural
//! extension" of Section 3.3, in the style of Resilient Overlay
//! Networks \[2\].
//!
//! Overlay nodes measure the underlay latency between each pair
//! (probing), and route application traffic over the lowest-latency
//! overlay path — possibly through intermediate VMs — re-optimizing
//! whenever measurements change. The ablation bench compares direct
//! underlay paths against overlay routing when a path degrades.

use std::collections::BinaryHeap;

use gridvm_simcore::metrics::Counter;
use gridvm_simcore::slot::DenseMap;
use gridvm_simcore::time::{SimDuration, SimTime};

/// Route queries answered straight from the topology-versioned pair
/// cache (no shortest-path work at all).
static ROUTE_CACHE_HITS: Counter = Counter::new("vnet.route_cache_hits");

/// Route queries that had to (re)build their answer — at worst one
/// Dijkstra per (source, topology-version), shared across every
/// destination via the per-source shortest-path tree.
static ROUTE_CACHE_MISSES: Counter = Counter::new("vnet.route_cache_misses");

/// Identifies an overlay node (a VM or a user site).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

/// Errors from overlay operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OverlayError {
    /// Node not part of the overlay.
    UnknownNode(
        /// The offending node.
        NodeId,
    ),
    /// No path exists (partition).
    Unreachable {
        /// Source node.
        from: NodeId,
        /// Destination node.
        to: NodeId,
    },
}

impl std::fmt::Display for OverlayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OverlayError::UnknownNode(n) => write!(f, "unknown overlay node {n}"),
            OverlayError::Unreachable { from, to } => {
                write!(f, "no overlay path from {from} to {to}")
            }
        }
    }
}

impl std::error::Error for OverlayError {}

/// A computed overlay route.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Route {
    /// The node sequence, source first, destination last.
    pub hops: Vec<NodeId>,
    /// Total measured latency along the path.
    pub latency: SimDuration,
}

impl Route {
    /// Number of intermediate relay nodes.
    pub fn relays(&self) -> usize {
        self.hops.len().saturating_sub(2)
    }
}

/// The overlay: nodes plus a mesh of measured pairwise latencies.
///
/// ```
/// use gridvm_vnet::overlay::{NodeId, Overlay};
/// use gridvm_simcore::time::{SimDuration, SimTime};
///
/// let mut ov = Overlay::new();
/// let (a, b, c) = (ov.add_node(), ov.add_node(), ov.add_node());
/// ov.update_measurement(a, b, SimDuration::from_millis(100));
/// ov.update_measurement(a, c, SimDuration::from_millis(10));
/// ov.update_measurement(c, b, SimDuration::from_millis(10));
/// let route = ov.route(a, b)?;
/// assert_eq!(route.hops, vec![a, c, b], "relay through c beats direct");
/// # Ok::<(), gridvm_vnet::overlay::OverlayError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct Overlay {
    next_id: u32,
    nodes: Vec<NodeId>,
    /// Liveness indexed by node id (ids are sequential and never
    /// reused) — O(1) membership on the per-packet path.
    alive: Vec<bool>,
    /// Per-node adjacency lists, each sorted by neighbor id so
    /// Dijkstra relaxes neighbors in exactly the order the previous
    /// `BTreeMap` range scan produced (identical tie-breaking,
    /// identical routes). Probes set both directions.
    adj: DenseMap<Vec<(NodeId, SimDuration)>>,
    reroutes: u64,
    /// Bumped by every topology mutation (node/link add, remove,
    /// measurement change, outage); cached answers are valid only
    /// while their recorded version matches.
    topo_version: u64,
    /// Per-source shortest-path tree, computed by one full Dijkstra
    /// and shared across every destination until the topology
    /// changes. Keyed by source node id.
    spt_cache: DenseMap<SptEntry>,
    /// Per-pair routes, as dense per-source rows keyed by destination
    /// id (also the previous-answer memory behind the `reroutes`
    /// self-optimization metric, which compares across versions).
    route_cache: DenseMap<DenseMap<(u64, Route)>>,
}

/// A cached single-source shortest-path tree, keyed by node id.
#[derive(Clone, Debug, Default)]
struct SptEntry {
    version: u64,
    dist: DenseMap<SimDuration>,
    prev: DenseMap<u32>,
}

impl Overlay {
    /// Creates an empty overlay.
    pub fn new() -> Self {
        Overlay::default()
    }

    /// Adds a node (a VM joining the overlay) and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        self.nodes.push(id);
        // Ids are issued sequentially, so `alive` stays index == id.
        self.alive.push(true);
        // audit:allow(alloc-in-hot): topology construction, not packet forwarding; nodes are added during setup and after faults only
        self.adj.insert(u64::from(id.0), Vec::new());
        self.topo_version += 1;
        id
    }

    fn is_member(&self, node: NodeId) -> bool {
        self.alive.get(node.0 as usize).copied().unwrap_or(false)
    }

    /// Removes a node and every measurement touching it (VM
    /// shutdown/migration away).
    pub fn remove_node(&mut self, node: NodeId) {
        self.nodes.retain(|n| *n != node);
        if let Some(flag) = self.alive.get_mut(node.0 as usize) {
            *flag = false;
        }
        // Measurements are symmetric, so the node's own list names
        // every neighbor whose list must drop it.
        if let Some(neighbors) = self.adj.remove(u64::from(node.0)) {
            for (b, _) in neighbors {
                if let Some(list) = self.adj.get_mut(u64::from(b.0)) {
                    if let Ok(i) = list.binary_search_by_key(&node, |(n, _)| *n) {
                        list.remove(i);
                    }
                }
            }
        }
        self.spt_cache.remove(u64::from(node.0));
        self.route_cache.remove(u64::from(node.0));
        for (_, row) in self.route_cache.iter_mut() {
            row.remove(u64::from(node.0));
        }
        self.topo_version += 1;
    }

    /// The current node set.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Installs or updates the directed edge `a → b`, keeping the
    /// adjacency list sorted by neighbor id.
    fn set_link(&mut self, a: NodeId, b: NodeId, latency: SimDuration) {
        if self.adj.get(u64::from(a.0)).is_none() {
            // audit:allow(alloc-in-hot): link installation is a topology-change event, not part of the per-packet path
            self.adj.insert(u64::from(a.0), Vec::new());
        }
        let list = self.adj.get_mut(u64::from(a.0)).expect("list just ensured");
        match list.binary_search_by_key(&b, |(n, _)| *n) {
            Ok(i) => list[i].1 = latency,
            Err(i) => list.insert(i, (b, latency)),
        }
    }

    fn clear_link(&mut self, a: NodeId, b: NodeId) {
        if let Some(list) = self.adj.get_mut(u64::from(a.0)) {
            if let Ok(i) = list.binary_search_by_key(&b, |(n, _)| *n) {
                list.remove(i);
            }
        }
    }

    /// Records a (symmetric) latency measurement between two nodes —
    /// the result of a probe.
    pub fn update_measurement(&mut self, a: NodeId, b: NodeId, latency: SimDuration) {
        self.set_link(a, b, latency);
        self.set_link(b, a, latency);
        self.topo_version += 1;
    }

    /// Marks the path between two nodes unusable (probe timed out).
    pub fn mark_down(&mut self, a: NodeId, b: NodeId) {
        self.clear_link(a, b);
        self.clear_link(b, a);
        self.topo_version += 1;
    }

    /// The measured direct latency, if a usable measurement exists.
    pub fn direct_latency(&self, a: NodeId, b: NodeId) -> Option<SimDuration> {
        let list = self.adj.get(u64::from(a.0))?;
        let i = list.binary_search_by_key(&b, |(n, _)| *n).ok()?;
        Some(list[i].1)
    }

    /// Times the overlay has changed its answer for a pair.
    pub fn reroutes(&self) -> u64 {
        self.reroutes
    }

    /// The current topology version. Bumped by every mutation; two
    /// equal versions guarantee identical routing answers.
    pub fn topology_version(&self) -> u64 {
        self.topo_version
    }

    /// Computes the minimum-latency route from `from` to `to` over
    /// the measurement mesh.
    ///
    /// Answers are cached per `(source, destination)` and per-source
    /// shortest-path trees are cached per topology version, so
    /// Dijkstra runs at most once per (source, topology-version) —
    /// not per packet. Per-query cache behavior is surfaced through
    /// the `vnet.route_cache_hits` / `vnet.route_cache_misses`
    /// metrics. Hot paths that do not need an owned [`Route`] should
    /// prefer [`route_ref`](Overlay::route_ref).
    ///
    /// # Errors
    ///
    /// Unknown nodes or no path.
    pub fn route(&mut self, from: NodeId, to: NodeId) -> Result<Route, OverlayError> {
        self.route_ref(from, to).cloned()
    }

    /// Like [`route`](Overlay::route) but borrows the cached route
    /// instead of cloning its hop vector — the per-packet hot path.
    ///
    /// # Errors
    ///
    /// Unknown nodes or no path.
    pub fn route_ref(&mut self, from: NodeId, to: NodeId) -> Result<&Route, OverlayError> {
        self.ensure_route(from, to)?;
        Ok(&self
            .route_cache
            .get(u64::from(from.0))
            .and_then(|row| row.get(u64::from(to.0)))
            .expect("ensure_route populated the pair cache")
            .1)
    }

    /// Validates the pair cache for `(from, to)`, recomputing from the
    /// (possibly also recomputed) per-source shortest-path tree when
    /// the topology has moved on.
    fn ensure_route(&mut self, from: NodeId, to: NodeId) -> Result<(), OverlayError> {
        if !self.is_member(from) {
            return Err(OverlayError::UnknownNode(from));
        }
        if !self.is_member(to) {
            return Err(OverlayError::UnknownNode(to));
        }
        if self
            .route_cache
            .get(u64::from(from.0))
            .and_then(|row| row.get(u64::from(to.0)))
            .is_some_and(|(v, _)| *v == self.topo_version)
        {
            ROUTE_CACHE_HITS.add(1);
            return Ok(());
        }
        ROUTE_CACHE_MISSES.add(1);
        let route = if from == to {
            Route {
                hops: vec![from],
                latency: SimDuration::ZERO,
            }
        } else {
            self.ensure_spt(from);
            let spt = self
                .spt_cache
                .get(u64::from(from.0))
                .expect("ensure_spt populated the source entry");
            let latency = *spt
                .dist
                .get(u64::from(to.0))
                .ok_or(OverlayError::Unreachable { from, to })?;
            let mut hops = vec![to];
            let mut cur = to;
            while cur != from {
                cur = NodeId(
                    *spt.prev
                        .get(u64::from(cur.0))
                        .expect("every reached node has a predecessor"),
                );
                hops.push(cur);
            }
            hops.reverse();
            Route { hops, latency }
        };
        // Track route changes for the self-optimization metric: the
        // stale pair entry is the previous answer.
        let changed = self
            .route_cache
            .get(u64::from(from.0))
            .and_then(|row| row.get(u64::from(to.0)))
            .is_some_and(|(_, old)| old.hops != route.hops);
        if changed {
            self.reroutes += 1;
        }
        if self.route_cache.get(u64::from(from.0)).is_none() {
            self.route_cache.insert(u64::from(from.0), DenseMap::new());
        }
        self.route_cache
            .get_mut(u64::from(from.0))
            .expect("row just ensured")
            .insert(u64::from(to.0), (self.topo_version, route));
        Ok(())
    }

    /// Ensures `spt_cache[from]` matches the current topology: one
    /// full Dijkstra (no early exit — the tree serves every
    /// destination) with neighbor iteration restricted to `from`'s
    /// sorted adjacency list, not a scan of all links.
    fn ensure_spt(&mut self, from: NodeId) {
        if self
            .spt_cache
            .get(u64::from(from.0))
            .is_some_and(|e| e.version == self.topo_version)
        {
            return;
        }
        let mut dist: DenseMap<SimDuration> = DenseMap::new();
        let mut prev: DenseMap<u32> = DenseMap::new();
        let mut heap: BinaryHeap<std::cmp::Reverse<(SimDuration, NodeId)>> = BinaryHeap::new();
        dist.insert(u64::from(from.0), SimDuration::ZERO);
        heap.push(std::cmp::Reverse((SimDuration::ZERO, from)));
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            if dist.get(u64::from(u.0)).is_some_and(|best| *best < d) {
                continue;
            }
            let Some(neighbors) = self.adj.get(u64::from(u.0)) else {
                continue;
            };
            // Sorted by id: the same relaxation order as the previous
            // implementation's `links.range((u, MIN)..=(u, MAX))`.
            for (b, w) in neighbors {
                let nd = d + *w;
                if dist.get(u64::from(b.0)).is_none_or(|best| nd < *best) {
                    dist.insert(u64::from(b.0), nd);
                    prev.insert(u64::from(b.0), u.0);
                    heap.push(std::cmp::Reverse((nd, *b)));
                }
            }
        }
        self.spt_cache.insert(
            u64::from(from.0),
            SptEntry {
                version: self.topo_version,
                dist,
                prev,
            },
        );
    }

    /// Full-mesh probe convenience: installs `latency(a, b)` for all
    /// pairs from a caller-provided measurement function.
    pub fn probe_mesh<F>(&mut self, _now: SimTime, mut measure: F)
    where
        F: FnMut(NodeId, NodeId) -> Option<SimDuration>,
    {
        let nodes = self.nodes.clone();
        for (i, a) in nodes.iter().enumerate() {
            for b in &nodes[i + 1..] {
                match measure(*a, *b) {
                    Some(lat) => self.update_measurement(*a, *b, lat),
                    None => self.mark_down(*a, *b),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn triangle() -> (Overlay, NodeId, NodeId, NodeId) {
        let mut ov = Overlay::new();
        let a = ov.add_node();
        let b = ov.add_node();
        let c = ov.add_node();
        ov.update_measurement(a, b, ms(50));
        ov.update_measurement(a, c, ms(10));
        ov.update_measurement(c, b, ms(10));
        (ov, a, b, c)
    }

    #[test]
    fn direct_route_when_it_is_best() {
        let (mut ov, a, b, _) = triangle();
        ov.update_measurement(a, b, ms(5));
        let r = ov.route(a, b).unwrap();
        assert_eq!(r.hops, vec![a, b]);
        assert_eq!(r.latency, ms(5));
        assert_eq!(r.relays(), 0);
    }

    #[test]
    fn relay_route_when_direct_is_slow() {
        let (mut ov, a, b, c) = triangle();
        let r = ov.route(a, b).unwrap();
        assert_eq!(r.hops, vec![a, c, b]);
        assert_eq!(r.latency, ms(20));
        assert_eq!(r.relays(), 1);
    }

    #[test]
    fn degradation_triggers_reroute() {
        let (mut ov, a, b, _c) = triangle();
        ov.update_measurement(a, b, ms(5));
        let _ = ov.route(a, b).unwrap();
        assert_eq!(ov.reroutes(), 0);
        // The direct path congests: overlay self-optimizes.
        ov.update_measurement(a, b, ms(500));
        let r = ov.route(a, b).unwrap();
        assert_eq!(r.relays(), 1);
        assert_eq!(ov.reroutes(), 1);
    }

    #[test]
    fn down_path_routes_around() {
        let (mut ov, a, b, c) = triangle();
        ov.mark_down(a, b);
        let r = ov.route(a, b).unwrap();
        assert_eq!(r.hops, vec![a, c, b]);
    }

    #[test]
    fn partition_is_reported() {
        let (mut ov, a, b, c) = triangle();
        ov.mark_down(a, b);
        ov.mark_down(a, c);
        let err = ov.route(a, b).unwrap_err();
        assert_eq!(err, OverlayError::Unreachable { from: a, to: b });
        assert!(err.to_string().contains("no overlay path"));
        let _ = c;
    }

    #[test]
    fn unknown_and_self_routes() {
        let (mut ov, a, _, _) = triangle();
        assert!(matches!(
            ov.route(a, NodeId(99)),
            Err(OverlayError::UnknownNode(_))
        ));
        let r = ov.route(a, a).unwrap();
        assert_eq!(r.hops, vec![a]);
        assert_eq!(r.latency, SimDuration::ZERO);
    }

    #[test]
    fn node_removal_cleans_measurements() {
        let (mut ov, a, b, c) = triangle();
        ov.remove_node(c);
        let r = ov.route(a, b).unwrap();
        assert_eq!(r.hops, vec![a, b], "relay is gone, direct only");
        assert_eq!(ov.nodes().len(), 2);
    }

    #[test]
    fn probe_mesh_populates_all_pairs() {
        let mut ov = Overlay::new();
        let nodes: Vec<NodeId> = (0..5).map(|_| ov.add_node()).collect();
        ov.probe_mesh(SimTime::ZERO, |a, b| Some(ms(u64::from(a.0 + b.0 + 1))));
        for (i, a) in nodes.iter().enumerate() {
            for b in &nodes[i + 1..] {
                assert!(ov.direct_latency(*a, *b).is_some());
            }
        }
        let r = ov.route(nodes[0], nodes[4]).unwrap();
        assert!(!r.hops.is_empty());
    }

    #[test]
    fn repeat_queries_hit_the_cache() {
        gridvm_simcore::metrics::reset();
        let (mut ov, a, b, _) = triangle();
        let r1 = ov.route(a, b).unwrap();
        let r2 = ov.route(a, b).unwrap();
        assert_eq!(r1, r2);
        let snap = gridvm_simcore::metrics::take();
        assert_eq!(snap.counter("vnet.route_cache_misses"), 1);
        assert_eq!(snap.counter("vnet.route_cache_hits"), 1);
    }

    #[test]
    fn topology_change_invalidates_cache() {
        gridvm_simcore::metrics::reset();
        let (mut ov, a, b, c) = triangle();
        let v0 = ov.topology_version();
        let _ = ov.route(a, b).unwrap();
        ov.mark_down(a, c);
        assert!(ov.topology_version() > v0, "mutation bumps the version");
        let r = ov.route(a, b).unwrap();
        assert_eq!(r.hops, vec![a, b], "recomputed around the outage");
        let snap = gridvm_simcore::metrics::take();
        assert_eq!(snap.counter("vnet.route_cache_misses"), 2);
        assert_eq!(snap.counter("vnet.route_cache_hits"), 0);
    }

    #[test]
    fn spt_is_shared_across_destinations() {
        gridvm_simcore::metrics::reset();
        let (mut ov, a, b, c) = triangle();
        // Two destinations from the same source at the same version:
        // two pair-cache misses, but one shortest-path tree (asserted
        // indirectly: both answers then hit).
        let _ = ov.route(a, b).unwrap();
        let _ = ov.route(a, c).unwrap();
        let _ = ov.route(a, b).unwrap();
        let _ = ov.route(a, c).unwrap();
        let snap = gridvm_simcore::metrics::take();
        assert_eq!(snap.counter("vnet.route_cache_misses"), 2);
        assert_eq!(snap.counter("vnet.route_cache_hits"), 2);
    }

    #[test]
    fn route_ref_matches_route() {
        let (mut ov, a, b, c) = triangle();
        let owned = ov.route(a, b).unwrap();
        let borrowed = ov.route_ref(a, b).unwrap();
        assert_eq!(*borrowed, owned);
        assert_eq!(borrowed.hops, vec![a, c, b]);
        assert!(matches!(
            ov.route_ref(a, NodeId(99)),
            Err(OverlayError::UnknownNode(_))
        ));
    }

    #[test]
    fn cached_routes_survive_node_removal_of_third_parties() {
        let (mut ov, a, b, c) = triangle();
        ov.update_measurement(a, b, ms(5));
        let _ = ov.route(a, b).unwrap();
        ov.remove_node(c);
        let r = ov.route(a, b).unwrap();
        assert_eq!(r.hops, vec![a, b]);
        assert_eq!(r.latency, ms(5));
    }

    #[test]
    fn multi_hop_chains_compose() {
        // A line topology: 0-1-2-3, no shortcuts.
        let mut ov = Overlay::new();
        let n: Vec<NodeId> = (0..4).map(|_| ov.add_node()).collect();
        ov.update_measurement(n[0], n[1], ms(10));
        ov.update_measurement(n[1], n[2], ms(10));
        ov.update_measurement(n[2], n[3], ms(10));
        let r = ov.route(n[0], n[3]).unwrap();
        assert_eq!(r.hops.len(), 4);
        assert_eq!(r.latency, ms(30));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The overlay route is never worse than the direct
        /// measurement when one exists (self-optimization soundness).
        #[test]
        fn overlay_never_loses_to_direct(weights in proptest::collection::vec(1u64..1000, 15)) {
            let mut ov = Overlay::new();
            let nodes: Vec<NodeId> = (0..6).map(|_| ov.add_node()).collect();
            let mut w = weights.into_iter();
            for i in 0..6 {
                for j in (i + 1)..6 {
                    if let Some(ms_w) = w.next() {
                        ov.update_measurement(nodes[i], nodes[j], SimDuration::from_millis(ms_w));
                    }
                }
            }
            for i in 0..6 {
                for j in 0..6 {
                    if i == j { continue; }
                    if let Some(direct) = ov.direct_latency(nodes[i], nodes[j]) {
                        let r = ov.route(nodes[i], nodes[j]).unwrap();
                        prop_assert!(r.latency <= direct,
                            "route {:?} worse than direct {}", r, direct);
                    }
                }
            }
        }
    }
}
