//! Multi-site virtual-organization topology: named grid sites joined
//! by inter-site [`NetLink`]s, the partition map for sharded
//! execution, and the **lookahead** extraction the conservative
//! synchronizer ([`gridvm_simcore::shard`]) is built on.
//!
//! The paper's deployment target is a virtual organization of
//! administrative sites ("middleware to allow resources of for-profit
//! service providers to be integrated") joined by wide-area links.
//! Cross-site interactions cannot propagate faster than the links
//! carrying them, so the minimum inter-site latency is a sound
//! lookahead: each site can execute independently that far past the
//! global event horizon.
//!
//! ```
//! use gridvm_vnet::sites::SiteTopology;
//! use gridvm_simcore::time::SimDuration;
//!
//! let topo = SiteTopology::paper_vo(4);
//! let la = topo.lookahead().expect("meshed");
//! assert!(la >= SimDuration::from_millis(5));
//! assert_eq!(topo.partition(2), vec![
//!     vec![gridvm_simcore::SiteId(0), gridvm_simcore::SiteId(2)],
//!     vec![gridvm_simcore::SiteId(1), gridvm_simcore::SiteId(3)],
//! ]);
//! ```

use std::collections::BTreeMap;

use gridvm_simcore::lookahead::LookaheadMatrix;
use gridvm_simcore::shard::SiteId;
use gridvm_simcore::time::SimDuration;
use gridvm_simcore::units::Bandwidth;

use crate::link::NetLink;

/// A virtual organization's site graph: named sites and symmetric
/// inter-site links.
#[derive(Clone, Debug, Default)]
pub struct SiteTopology {
    names: Vec<String>,
    /// Keyed by the normalized `(lo, hi)` site-id pair; links are
    /// symmetric.
    links: BTreeMap<(u32, u32), NetLink>,
}

impl SiteTopology {
    /// An empty topology.
    pub fn new() -> Self {
        SiteTopology::default()
    }

    /// Adds a named site and returns its id (ids are dense, in
    /// insertion order — the same ids a [`ShardedSim`] assigns its
    /// worlds).
    ///
    /// [`ShardedSim`]: gridvm_simcore::shard::ShardedSim
    pub fn add_site(&mut self, name: &str) -> SiteId {
        self.names.push(name.to_owned());
        SiteId((self.names.len() - 1) as u32)
    }

    /// Number of sites.
    pub fn sites(&self) -> usize {
        self.names.len()
    }

    /// A site's name.
    pub fn name(&self, site: SiteId) -> &str {
        &self.names[site.index()]
    }

    /// Connects two sites with a symmetric link. A later call for the
    /// same pair replaces the link.
    ///
    /// # Panics
    ///
    /// Panics on a self-link, an unknown site, or a zero-latency link
    /// — a zero-latency inter-site link would collapse the
    /// conservative synchronizer's lookahead to nothing.
    pub fn connect(&mut self, a: SiteId, b: SiteId, link: NetLink) {
        assert!(a != b, "self-link at {a}");
        assert!(
            a.index() < self.names.len() && b.index() < self.names.len(),
            "link references an unknown site"
        );
        assert!(
            link.latency() > SimDuration::ZERO,
            "zero-latency inter-site link would leave no lookahead"
        );
        self.links.insert(pair_key(a, b), link);
    }

    /// The link between two sites, if connected (order-insensitive).
    pub fn link(&self, a: SiteId, b: SiteId) -> Option<&NetLink> {
        self.links.get(&pair_key(a, b))
    }

    /// Mutable access to the link between two sites (fault
    /// injection: outages, degradation).
    pub fn link_mut(&mut self, a: SiteId, b: SiteId) -> Option<&mut NetLink> {
        self.links.get_mut(&pair_key(a, b))
    }

    /// One-way propagation latency between two sites, if connected.
    pub fn latency(&self, a: SiteId, b: SiteId) -> Option<SimDuration> {
        self.link(a, b).map(NetLink::latency)
    }

    /// The conservative synchronizer's lookahead: the minimum latency
    /// over every inter-site link. `None` when no links exist (a
    /// single-site or fully disconnected topology needs no
    /// synchronization).
    pub fn lookahead(&self) -> Option<SimDuration> {
        self.links.values().map(NetLink::latency).min()
    }

    /// The per-(src,dst) lookahead matrix: the all-pairs
    /// minimum-latency closure of the site graph, ready to install on
    /// a sharded sim with
    /// [`ShardedSim::per_pair_lookahead`](gridvm_simcore::shard::ShardedSim::per_pair_lookahead).
    /// Where [`Self::lookahead`] collapses the topology to one global
    /// constant, the matrix keeps each pair's true bound — on a
    /// regional topology the WAN pairs contribute windows 4–9× wider
    /// than the metro minimum.
    pub fn lookahead_matrix(&self) -> LookaheadMatrix {
        LookaheadMatrix::shortest_paths(self.sites(), |a, b| self.latency(a, b))
    }

    /// Round-robin partition of sites into `shards` groups by
    /// `site_id % shards` — the same grouping
    /// [`ShardedSim`](gridvm_simcore::shard::ShardedSim) uses for
    /// window execution, exposed so harnesses can report per-shard
    /// membership.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero.
    pub fn partition(&self, shards: usize) -> Vec<Vec<SiteId>> {
        assert!(shards > 0, "shard count must be positive");
        let shards = shards.min(self.sites().max(1));
        let mut groups = vec![Vec::new(); shards];
        for i in 0..self.sites() {
            groups[i % shards].push(SiteId(i as u32));
        }
        groups
    }

    /// A fully meshed topology of `n` identical sites.
    pub fn full_mesh(n: u32, latency: SimDuration, bandwidth: Bandwidth) -> Self {
        let mut topo = SiteTopology::new();
        for i in 0..n {
            topo.add_site(&format!("site{i}"));
        }
        for a in 0..n {
            for b in (a + 1)..n {
                topo.connect(SiteId(a), SiteId(b), NetLink::new(latency, bandwidth));
            }
        }
        topo
    }

    /// The reference virtual organization used by the sharded
    /// experiments: `n` sites, fully meshed over WAN links whose
    /// latencies vary deterministically with the site pair in
    /// `[5ms, 17ms)` at 100 Mbit/s — so the lookahead is 5 ms and
    /// cross-site delivery times differ per route.
    pub fn paper_vo(n: u32) -> Self {
        let mut topo = SiteTopology::new();
        for i in 0..n {
            topo.add_site(&format!("vo-site{i}"));
        }
        let bw = Bandwidth::from_mbit_per_sec(100.0);
        for a in 0..n {
            for b in (a + 1)..n {
                let ms = 5 + (u64::from(a) * 7 + u64::from(b) * 13) % 12;
                topo.connect(
                    SiteId(a),
                    SiteId(b),
                    NetLink::new(SimDuration::from_millis(ms), bw),
                );
            }
        }
        topo
    }

    /// The macro-scale virtual organization: `regions × per_region`
    /// sites, fully meshed, with metro-area latencies inside a region
    /// (`[5, 8)` ms) and WAN latencies between regions (`[20, 45)`
    /// ms), both deterministic per site pair. The lookahead stays at
    /// 5 ms — the conservative synchronizer's window — while most of
    /// the mesh pays a genuine wide-area price, which is what makes
    /// latency-aware placement policies distinguishable at scale.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    pub fn regional_vo(regions: u32, per_region: u32) -> Self {
        assert!(
            regions > 0 && per_region > 0,
            "a regional VO needs at least one region and one site per region"
        );
        let n = regions * per_region;
        let mut topo = SiteTopology::new();
        for i in 0..n {
            topo.add_site(&format!("r{}-s{}", i / per_region, i % per_region));
        }
        let wan = Bandwidth::from_mbit_per_sec(100.0);
        let metro = Bandwidth::from_mbit_per_sec(1000.0);
        for a in 0..n {
            for b in (a + 1)..n {
                let (ra, rb) = (a / per_region, b / per_region);
                let (ms, bw) = if ra == rb {
                    (5 + (u64::from(a) + u64::from(b)) % 3, metro)
                } else {
                    (
                        20 + (u64::from(ra) * 5
                            + u64::from(rb) * 11
                            + u64::from(a) * 3
                            + u64::from(b) * 7)
                            % 25,
                        wan,
                    )
                };
                topo.connect(
                    SiteId(a),
                    SiteId(b),
                    NetLink::new(SimDuration::from_millis(ms), bw),
                );
            }
        }
        topo
    }
}

/// Normalizes a site pair to its `(lo, hi)` key.
fn pair_key(a: SiteId, b: SiteId) -> (u32, u32) {
    (a.0.min(b.0), a.0.max(b.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh(n: u32) -> SiteTopology {
        SiteTopology::full_mesh(
            n,
            SimDuration::from_millis(10),
            Bandwidth::from_mbit_per_sec(100.0),
        )
    }

    #[test]
    fn links_are_symmetric_and_replaceable() {
        let mut topo = mesh(3);
        assert_eq!(topo.sites(), 3);
        assert_eq!(
            topo.latency(SiteId(2), SiteId(0)),
            topo.latency(SiteId(0), SiteId(2))
        );
        topo.connect(
            SiteId(0),
            SiteId(1),
            NetLink::new(
                SimDuration::from_millis(3),
                Bandwidth::from_mbit_per_sec(10.0),
            ),
        );
        assert_eq!(
            topo.latency(SiteId(1), SiteId(0)),
            Some(SimDuration::from_millis(3))
        );
        assert!(topo.link_mut(SiteId(0), SiteId(2)).is_some());
        assert!(topo.link(SiteId(0), SiteId(0)).is_none());
    }

    #[test]
    fn lookahead_is_the_minimum_link_latency() {
        assert_eq!(SiteTopology::new().lookahead(), None);
        let mut topo = mesh(3);
        assert_eq!(topo.lookahead(), Some(SimDuration::from_millis(10)));
        topo.connect(
            SiteId(1),
            SiteId(2),
            NetLink::new(
                SimDuration::from_millis(4),
                Bandwidth::from_mbit_per_sec(100.0),
            ),
        );
        assert_eq!(topo.lookahead(), Some(SimDuration::from_millis(4)));
    }

    #[test]
    fn paper_vo_is_meshed_with_bounded_latencies() {
        let topo = SiteTopology::paper_vo(6);
        assert_eq!(topo.sites(), 6);
        for a in 0..6u32 {
            for b in 0..6u32 {
                if a == b {
                    continue;
                }
                let lat = topo.latency(SiteId(a), SiteId(b)).expect("meshed");
                assert!(lat >= SimDuration::from_millis(5), "{a}->{b}: {lat}");
                assert!(lat < SimDuration::from_millis(17), "{a}->{b}: {lat}");
            }
        }
        assert!(topo.lookahead().expect("meshed") >= SimDuration::from_millis(5));
        assert_eq!(topo.name(SiteId(0)), "vo-site0");
    }

    #[test]
    fn partition_round_robins_sites() {
        let topo = mesh(5);
        let groups = topo.partition(2);
        assert_eq!(
            groups,
            vec![
                vec![SiteId(0), SiteId(2), SiteId(4)],
                vec![SiteId(1), SiteId(3)],
            ]
        );
        assert_eq!(topo.partition(8).len(), 5, "clamped to site count");
    }

    #[test]
    fn regional_vo_separates_metro_and_wan_latencies() {
        let topo = SiteTopology::regional_vo(3, 4);
        assert_eq!(topo.sites(), 12);
        assert_eq!(topo.name(SiteId(0)), "r0-s0");
        assert_eq!(topo.name(SiteId(5)), "r1-s1");
        for a in 0..12u32 {
            for b in (a + 1)..12u32 {
                let lat = topo.latency(SiteId(a), SiteId(b)).expect("meshed");
                if a / 4 == b / 4 {
                    assert!(lat >= SimDuration::from_millis(5), "{a}->{b}: {lat}");
                    assert!(lat < SimDuration::from_millis(8), "{a}->{b}: {lat}");
                } else {
                    assert!(lat >= SimDuration::from_millis(20), "{a}->{b}: {lat}");
                    assert!(lat < SimDuration::from_millis(45), "{a}->{b}: {lat}");
                }
            }
        }
        assert_eq!(topo.lookahead(), Some(SimDuration::from_millis(5)));
    }

    #[test]
    fn lookahead_matrix_closes_over_relay_paths() {
        // Direct 0-1 link is 30ms, but relaying through 2 costs
        // 4 + 4: the matrix must report the relayed bound while the
        // scalar lookahead stays the cheapest single link.
        let mut topo = SiteTopology::new();
        let (a, b, c) = (topo.add_site("a"), topo.add_site("b"), topo.add_site("c"));
        let bw = Bandwidth::from_mbit_per_sec(100.0);
        topo.connect(a, b, NetLink::new(SimDuration::from_millis(30), bw));
        topo.connect(a, c, NetLink::new(SimDuration::from_millis(4), bw));
        topo.connect(b, c, NetLink::new(SimDuration::from_millis(4), bw));
        let m = topo.lookahead_matrix();
        assert_eq!(m.lookahead(a, b), Some(SimDuration::from_millis(8)));
        assert_eq!(m.lookahead(a, c), Some(SimDuration::from_millis(4)));
        assert_eq!(m.min_lookahead(), topo.lookahead());
    }

    #[test]
    fn lookahead_matrix_agrees_with_scalar_lookahead_on_reference_vos() {
        for topo in [
            SiteTopology::paper_vo(6),
            SiteTopology::regional_vo(3, 4),
            SiteTopology::new(),
        ] {
            let m = topo.lookahead_matrix();
            assert_eq!(m.sites(), topo.sites());
            assert_eq!(m.min_lookahead(), topo.lookahead());
        }
        // Regional WAN pairs keep bounds well above the 5ms metro
        // minimum — the structure the per-pair protocol exploits.
        let m = SiteTopology::regional_vo(3, 4).lookahead_matrix();
        assert!(m.lookahead_nanos(0, 8) >= SimDuration::from_millis(10).as_nanos());
    }

    #[test]
    #[should_panic(expected = "at least one region")]
    fn regional_vo_rejects_empty_dimensions() {
        let _ = SiteTopology::regional_vo(0, 4);
    }

    #[test]
    #[should_panic(expected = "no lookahead")]
    fn zero_latency_links_are_rejected() {
        let mut topo = mesh(2);
        topo.connect(
            SiteId(0),
            SiteId(1),
            NetLink::new(SimDuration::ZERO, Bandwidth::from_mbit_per_sec(1.0)),
        );
    }

    #[test]
    #[should_panic(expected = "self-link")]
    fn self_links_are_rejected() {
        let mut topo = mesh(2);
        let l = topo.link(SiteId(0), SiteId(1)).expect("meshed").clone();
        topo.connect(SiteId(1), SiteId(1), l);
    }
}
