//! Ethernet-over-SSH tunneling and the VM VPN — scenario 2 of
//! Section 3.3.
//!
//! "The simplest approach is to tunnel traffic, at the Ethernet
//! level, between the remote virtual machine and the local network of
//! the user. ... If we used SSH to start the machine, we could use
//! the SSH tunneling features."
//!
//! An [`EthernetTunnel`] wraps an underlay [`NetLink`] and charges
//! per-frame encapsulation bytes plus SSH crypto time; a [`Vpn`]
//! grafts remote VMs onto the user's home subnet by carrying their
//! DHCP traffic through the tunnel.

use std::collections::BTreeMap;

use gridvm_simcore::server::ServiceGrant;
use gridvm_simcore::time::{SimDuration, SimTime};
use gridvm_simcore::units::ByteSize;

use crate::addr::{Ipv4Addr, MacAddr};
use crate::dhcp::{DhcpError, DhcpServer};
use crate::link::{LinkError, NetLink};

/// Ethernet + SSH encapsulation overhead per frame (Ethernet header,
/// SSH packet framing, MAC, padding).
pub const FRAME_OVERHEAD: ByteSize = ByteSize::from_bytes(14 + 64);

/// An Ethernet-level tunnel over an SSH connection.
///
/// ```
/// use gridvm_vnet::link::NetLink;
/// use gridvm_vnet::tunnel::EthernetTunnel;
/// use gridvm_simcore::time::{SimDuration, SimTime};
/// use gridvm_simcore::units::{Bandwidth, ByteSize};
///
/// let underlay = NetLink::new(SimDuration::from_millis(20), Bandwidth::from_mbit_per_sec(10.0));
/// let mut tun = EthernetTunnel::new(underlay);
/// let g = tun.send_frame(SimTime::ZERO, ByteSize::from_bytes(1500)).unwrap();
/// assert!(g.finish.as_secs_f64() > 0.020, "at least the underlay latency");
/// ```
#[derive(Clone, Debug)]
pub struct EthernetTunnel {
    underlay: NetLink,
    crypto_per_kib: SimDuration,
    frames: u64,
}

impl EthernetTunnel {
    /// Wraps an underlay link with default (3DES-era) crypto cost of
    /// ~80 µs per KiB.
    pub fn new(underlay: NetLink) -> Self {
        EthernetTunnel {
            underlay,
            crypto_per_kib: SimDuration::from_micros(80),
            frames: 0,
        }
    }

    /// Overrides the per-KiB crypto cost.
    pub fn with_crypto_cost(mut self, per_kib: SimDuration) -> Self {
        self.crypto_per_kib = per_kib;
        self
    }

    /// The underlay link (for failure injection).
    pub fn underlay_mut(&mut self) -> &mut NetLink {
        &mut self.underlay
    }

    /// Frames carried so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Sends one Ethernet frame of `payload` bytes through the
    /// tunnel.
    ///
    /// # Errors
    ///
    /// [`LinkError::Down`] when the underlay is down.
    pub fn send_frame(
        &mut self,
        now: SimTime,
        payload: ByteSize,
    ) -> Result<ServiceGrant, LinkError> {
        let kib = payload.as_f64() / 1024.0;
        let crypto = self.crypto_per_kib.mul_f64(kib.max(0.05));
        let wire = self.underlay.send(now + crypto, payload + FRAME_OVERHEAD)?;
        self.frames += 1;
        Ok(ServiceGrant {
            start: now,
            // decrypt at the far end costs the same again
            finish: wire.finish + crypto,
        })
    }

    /// The effective goodput for `size` bytes of payload in
    /// 1500-byte frames, measured end to end from `now`.
    ///
    /// # Errors
    ///
    /// [`LinkError::Down`] when the underlay is down.
    pub fn send_bulk(&mut self, now: SimTime, size: ByteSize) -> Result<ServiceGrant, LinkError> {
        let mtu = 1500u64;
        let frames = size.as_u64().div_ceil(mtu).max(1);
        let mut last = now;
        for i in 0..frames {
            let payload = ByteSize::from_bytes(mtu.min(size.as_u64() - i * mtu));
            // Frames pipeline: each is handed to the tunnel as soon
            // as the previous one's crypto is done; the underlay pipe
            // serializes them.
            let g = self.send_frame(now, payload)?;
            last = g.finish.max(last);
        }
        Ok(ServiceGrant {
            start: now,
            finish: last,
        })
    }
}

/// A VPN grafting remote VMs onto the user's home network: addresses
/// come from the *home* DHCP server, reached through the tunnel.
///
/// "the remote machine would appear to be connected to the local
/// network, where, presumably, it would be easy for the user to have
/// it assigned an address".
#[derive(Debug)]
pub struct Vpn {
    tunnel: EthernetTunnel,
    home_dhcp: DhcpServer,
    /// MAC-keyed membership. MACs are external boundary keys (sparse
    /// 48-bit identifiers), so this stays an ordered map; joins and
    /// leaves are cold control-plane operations.
    members: BTreeMap<MacAddr, Ipv4Addr>,
}

/// Errors from VPN operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VpnError {
    /// The tunnel underlay is down.
    Tunnel(LinkError),
    /// The home DHCP pool rejected the request.
    Dhcp(DhcpError),
}

impl std::fmt::Display for VpnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VpnError::Tunnel(e) => write!(f, "tunnel: {e}"),
            VpnError::Dhcp(e) => write!(f, "home dhcp: {e}"),
        }
    }
}

impl std::error::Error for VpnError {}

impl From<LinkError> for VpnError {
    fn from(e: LinkError) -> Self {
        VpnError::Tunnel(e)
    }
}

impl From<DhcpError> for VpnError {
    fn from(e: DhcpError) -> Self {
        VpnError::Dhcp(e)
    }
}

impl Vpn {
    /// Creates a VPN from a tunnel to the user's site and the home
    /// DHCP server.
    pub fn new(tunnel: EthernetTunnel, home_dhcp: DhcpServer) -> Self {
        Vpn {
            tunnel,
            home_dhcp,
            members: BTreeMap::new(),
        }
    }

    /// Joins a remote VM to the home network: a DHCP exchange
    /// (DISCOVER/OFFER/REQUEST/ACK ≈ 4 frames) through the tunnel.
    /// Returns the assigned home-subnet address and the completion
    /// time.
    ///
    /// # Errors
    ///
    /// Tunnel down or home pool exhausted.
    pub fn join(&mut self, now: SimTime, mac: MacAddr) -> Result<(Ipv4Addr, SimTime), VpnError> {
        let mut t = now;
        for _ in 0..4 {
            let g = self.tunnel.send_frame(t, ByteSize::from_bytes(342))?;
            t = g.finish;
        }
        let lease = self.home_dhcp.acquire(t, mac)?;
        self.members.insert(mac, lease.addr);
        Ok((lease.addr, t))
    }

    /// The tunnel carrying this VPN (exposed for failure injection
    /// and link inspection).
    pub fn tunnel_mut(&mut self) -> &mut EthernetTunnel {
        &mut self.tunnel
    }

    /// The home address of a joined VM.
    pub fn address_of(&self, mac: MacAddr) -> Option<Ipv4Addr> {
        self.members.get(&mac).copied()
    }

    /// Number of joined VMs.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// Sends application traffic from a joined VM to the home
    /// network.
    ///
    /// # Errors
    ///
    /// Tunnel down, or the MAC never joined (reported as a missing
    /// lease).
    pub fn send_home(
        &mut self,
        now: SimTime,
        mac: MacAddr,
        size: ByteSize,
    ) -> Result<ServiceGrant, VpnError> {
        if !self.members.contains_key(&mac) {
            return Err(VpnError::Dhcp(DhcpError::NoLease(mac)));
        }
        Ok(self.tunnel.send_bulk(now, size)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Subnet;
    use gridvm_simcore::units::Bandwidth;

    fn tunnel() -> EthernetTunnel {
        EthernetTunnel::new(NetLink::new(
            SimDuration::from_millis(25),
            Bandwidth::from_mbit_per_sec(10.0),
        ))
    }

    fn vpn() -> Vpn {
        let dhcp = DhcpServer::new(
            Subnet::new(Ipv4Addr::from_octets(192, 168, 1, 0), 24),
            SimDuration::from_secs(3600),
        );
        Vpn::new(tunnel(), dhcp)
    }

    #[test]
    fn frames_pay_crypto_and_encapsulation() {
        let mut plain = NetLink::new(
            SimDuration::from_millis(25),
            Bandwidth::from_mbit_per_sec(10.0),
        );
        let raw = plain
            .send(SimTime::ZERO, ByteSize::from_bytes(1500))
            .unwrap();
        let mut t = tunnel();
        let tun = t
            .send_frame(SimTime::ZERO, ByteSize::from_bytes(1500))
            .unwrap();
        assert!(
            tun.finish > raw.finish,
            "tunnel adds overhead: {} vs {}",
            tun.finish,
            raw.finish
        );
        assert_eq!(t.frames(), 1);
    }

    #[test]
    fn bulk_transfer_fragments_into_frames() {
        let mut t = tunnel();
        let g = t.send_bulk(SimTime::ZERO, ByteSize::from_kib(30)).unwrap();
        assert_eq!(t.frames(), 21, "30 KiB / 1500 B = 21 frames");
        assert!(g.finish > SimTime::ZERO);
    }

    #[test]
    fn vpn_join_assigns_home_address() {
        let mut v = vpn();
        let (addr, done) = v.join(SimTime::ZERO, MacAddr::local(7)).unwrap();
        assert!(Subnet::new(Ipv4Addr::from_octets(192, 168, 1, 0), 24).contains(addr));
        // 4 frames × ~25 ms latency each way: the join takes ~100+ ms.
        assert!(done.as_secs_f64() > 0.09, "join at {done}");
        assert_eq!(v.address_of(MacAddr::local(7)), Some(addr));
        assert_eq!(v.member_count(), 1);
    }

    #[test]
    fn unjoined_vm_cannot_send() {
        let mut v = vpn();
        let err = v
            .send_home(SimTime::ZERO, MacAddr::local(9), ByteSize::from_kib(1))
            .unwrap_err();
        assert!(matches!(err, VpnError::Dhcp(DhcpError::NoLease(_))));
    }

    #[test]
    fn tunnel_failure_propagates() {
        let mut v = vpn();
        v.tunnel.underlay_mut().set_down();
        let err = v.join(SimTime::ZERO, MacAddr::local(1)).unwrap_err();
        assert!(matches!(err, VpnError::Tunnel(LinkError::Down)));
        assert!(err.to_string().contains("tunnel"));
    }

    #[test]
    fn joined_vm_traffic_flows_home() {
        let mut v = vpn();
        let (_, t) = v.join(SimTime::ZERO, MacAddr::local(1)).unwrap();
        let g = v
            .send_home(t, MacAddr::local(1), ByteSize::from_kib(64))
            .unwrap();
        assert!(g.finish > t);
    }
}
