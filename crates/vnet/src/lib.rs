//! # gridvm-vnet
//!
//! Virtual networking for dynamically created VMs (Section 3.3).
//!
//! The paper distinguishes two connectivity scenarios:
//!
//! 1. the VM host hands out addresses to guests — modeled by
//!    [`dhcp`];
//! 2. the host does not, and the guest is tunneled at the Ethernet
//!    level back to the user's network ("similar to VPNs", over the
//!    SSH connection used to launch the VM) — modeled by [`tunnel`];
//!    with the "natural extension" of an **overlay network among the
//!    remote virtual machines** that "would optimize itself with
//!    respect to the communication between the virtual machines" —
//!    modeled by [`overlay`] (RON-style \[2\]).
//!
//! * [`addr`] — MAC/IPv4 newtypes and subnets.
//! * [`dhcp`] — lease allocation with expiry and reclamation.
//! * [`link`] — point-to-point links with latency/bandwidth and
//!   failure state.
//! * [`tunnel`] — Ethernet-over-SSH framing and crypto costs; the
//!   VPN that grafts a remote VM onto its home network.
//! * [`overlay`] — probing, adaptive shortest-path routing, and
//!   re-optimization when the underlay degrades.
//! * [`sites`] — the multi-site virtual-organization graph: named
//!   sites joined by inter-site links, shard partition maps, and the
//!   minimum-latency **lookahead** extraction the conservative
//!   synchronizer (`gridvm_simcore::shard`) advances by.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod dhcp;
pub mod link;
pub mod overlay;
pub mod sites;
pub mod tunnel;

pub use addr::{Ipv4Addr, MacAddr, Subnet};
pub use dhcp::DhcpServer;
pub use link::NetLink;
pub use overlay::{NodeId, Overlay};
pub use sites::SiteTopology;
pub use tunnel::{EthernetTunnel, Vpn};
