//! DHCP lease allocation — scenario 1 of Section 3.3: "the VM may
//! obtain an IP address dynamically from the host's network (e.g. via
//! DHCP), which can then be used by the middleware to reference the
//! VM for the duration of a session."

use std::collections::BTreeMap;

use gridvm_simcore::slot::DenseMap;
use gridvm_simcore::time::{SimDuration, SimTime};

use crate::addr::{Ipv4Addr, MacAddr, Subnet};

/// A granted lease.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Lease {
    /// The assigned address.
    pub addr: Ipv4Addr,
    /// When the lease lapses unless renewed.
    pub expires: SimTime,
}

/// Errors from lease operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DhcpError {
    /// No free addresses in the pool.
    Exhausted,
    /// The MAC holds no active lease.
    NoLease(
        /// The querying MAC.
        MacAddr,
    ),
}

impl std::fmt::Display for DhcpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DhcpError::Exhausted => write!(f, "address pool exhausted"),
            DhcpError::NoLease(mac) => write!(f, "no active lease for {mac}"),
        }
    }
}

impl std::error::Error for DhcpError {}

/// A DHCP server handing out leases from one subnet.
///
/// ```
/// use gridvm_vnet::addr::{Ipv4Addr, MacAddr, Subnet};
/// use gridvm_vnet::dhcp::DhcpServer;
/// use gridvm_simcore::time::{SimDuration, SimTime};
///
/// let net = Subnet::new(Ipv4Addr::from_octets(10, 1, 0, 0), 24);
/// let mut dhcp = DhcpServer::new(net, SimDuration::from_secs(3600));
/// let lease = dhcp.acquire(SimTime::ZERO, MacAddr::local(1))?;
/// assert!(net.contains(lease.addr));
/// # Ok::<(), gridvm_vnet::dhcp::DhcpError>(())
/// ```
#[derive(Clone, Debug)]
pub struct DhcpServer {
    subnet: Subnet,
    lease_time: SimDuration,
    /// MAC-keyed lease table. The MAC is an external boundary key
    /// (clients identify themselves by it), so this stays an ordered
    /// map; the per-address hot path below resolves to host indices.
    leases: BTreeMap<MacAddr, Lease>,
    /// Per-host-index occupancy keyed by the address's host number:
    /// the current holder and its expiry. Makes `find_free` O(1) per
    /// candidate instead of a scan of every lease.
    in_use: DenseMap<(MacAddr, SimTime)>,
    next_host: u32,
}

impl DhcpServer {
    /// Creates a server over `subnet` with the given lease time.
    ///
    /// # Panics
    ///
    /// Panics on a zero lease time.
    pub fn new(subnet: Subnet, lease_time: SimDuration) -> Self {
        assert!(!lease_time.is_zero(), "zero lease time");
        DhcpServer {
            subnet,
            lease_time,
            leases: BTreeMap::new(),
            in_use: DenseMap::new(),
            next_host: 1,
        }
    }

    /// Host index of `addr` within the managed subnet.
    fn host_index(&self, addr: Ipv4Addr) -> u64 {
        u64::from(addr.0 - self.subnet.base().0)
    }

    /// The managed subnet.
    pub fn subnet(&self) -> Subnet {
        self.subnet
    }

    /// Active (unexpired at `now`) lease count.
    pub fn active_leases(&self, now: SimTime) -> usize {
        self.leases.values().filter(|l| l.expires > now).count()
    }

    /// Acquires (or renews) a lease for `mac`.
    ///
    /// # Errors
    ///
    /// [`DhcpError::Exhausted`] when every host address is held by an
    /// unexpired lease.
    pub fn acquire(&mut self, now: SimTime, mac: MacAddr) -> Result<Lease, DhcpError> {
        // Renewal: same address, extended expiry.
        if let Some(existing) = self.leases.get(&mac) {
            if existing.expires > now {
                let renewed = Lease {
                    addr: existing.addr,
                    expires: now + self.lease_time,
                };
                self.leases.insert(mac, renewed);
                self.in_use
                    .insert(self.host_index(renewed.addr), (mac, renewed.expires));
                return Ok(renewed);
            }
        }
        let addr = self.find_free(now).ok_or(DhcpError::Exhausted)?;
        let lease = Lease {
            addr,
            expires: now + self.lease_time,
        };
        self.leases.insert(mac, lease);
        self.in_use
            .insert(self.host_index(addr), (mac, lease.expires));
        Ok(lease)
    }

    fn find_free(&mut self, now: SimTime) -> Option<Ipv4Addr> {
        let count = self.subnet.host_count();
        for _ in 0..count {
            let candidate = self.subnet.host(self.next_host);
            let taken = matches!(
                self.in_use.get(u64::from(self.next_host)),
                Some((_, expires)) if *expires > now
            );
            self.next_host = self.next_host % count + 1;
            if !taken {
                return Some(candidate);
            }
        }
        None
    }

    /// Looks up the active lease of `mac`.
    ///
    /// # Errors
    ///
    /// [`DhcpError::NoLease`] when none is active at `now`.
    pub fn lookup(&self, now: SimTime, mac: MacAddr) -> Result<Lease, DhcpError> {
        match self.leases.get(&mac) {
            Some(l) if l.expires > now => Ok(*l),
            _ => Err(DhcpError::NoLease(mac)),
        }
    }

    /// Releases `mac`'s lease (VM shutdown). Idempotent.
    pub fn release(&mut self, mac: MacAddr) {
        if let Some(lease) = self.leases.remove(&mac) {
            let host = self.host_index(lease.addr);
            // Only clear occupancy while `mac` still holds the address;
            // an expired lease may have been reassigned already.
            if matches!(self.in_use.get(host), Some((owner, _)) if *owner == mac) {
                self.in_use.remove(host);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server(prefix: u8) -> DhcpServer {
        DhcpServer::new(
            Subnet::new(Ipv4Addr::from_octets(10, 0, 0, 0), prefix),
            SimDuration::from_secs(60),
        )
    }

    #[test]
    fn leases_are_unique_while_active() {
        let mut d = server(24);
        let a = d.acquire(SimTime::ZERO, MacAddr::local(1)).unwrap();
        let b = d.acquire(SimTime::ZERO, MacAddr::local(2)).unwrap();
        assert_ne!(a.addr, b.addr);
        assert_eq!(d.active_leases(SimTime::ZERO), 2);
    }

    #[test]
    fn renewal_keeps_the_address() {
        let mut d = server(24);
        let first = d.acquire(SimTime::ZERO, MacAddr::local(1)).unwrap();
        let renewed = d
            .acquire(SimTime::from_secs(30), MacAddr::local(1))
            .unwrap();
        assert_eq!(first.addr, renewed.addr);
        assert!(renewed.expires > first.expires);
    }

    #[test]
    fn pool_exhaustion_and_expiry_reclamation() {
        let mut d = server(30); // 2 hosts
        d.acquire(SimTime::ZERO, MacAddr::local(1)).unwrap();
        d.acquire(SimTime::ZERO, MacAddr::local(2)).unwrap();
        assert_eq!(
            d.acquire(SimTime::ZERO, MacAddr::local(3)),
            Err(DhcpError::Exhausted)
        );
        // After expiry the addresses are reclaimable.
        let later = SimTime::from_secs(120);
        let c = d.acquire(later, MacAddr::local(3)).unwrap();
        assert!(d.subnet().contains(c.addr));
    }

    #[test]
    fn release_frees_immediately() {
        let mut d = server(30);
        let a = d.acquire(SimTime::ZERO, MacAddr::local(1)).unwrap();
        d.acquire(SimTime::ZERO, MacAddr::local(2)).unwrap();
        d.release(MacAddr::local(1));
        let c = d.acquire(SimTime::ZERO, MacAddr::local(3)).unwrap();
        assert_eq!(c.addr, a.addr, "released address is reused");
    }

    #[test]
    fn lookup_respects_expiry() {
        let mut d = server(24);
        d.acquire(SimTime::ZERO, MacAddr::local(1)).unwrap();
        assert!(d.lookup(SimTime::from_secs(30), MacAddr::local(1)).is_ok());
        assert!(matches!(
            d.lookup(SimTime::from_secs(61), MacAddr::local(1)),
            Err(DhcpError::NoLease(_))
        ));
        assert!(matches!(
            d.lookup(SimTime::ZERO, MacAddr::local(9)),
            Err(DhcpError::NoLease(_))
        ));
    }
}
