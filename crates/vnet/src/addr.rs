//! Network addressing newtypes: MAC addresses, IPv4 addresses and
//! subnets.

use std::fmt;

/// A 48-bit Ethernet MAC address — what a freshly instantiated VM
/// "appears to the network to be" (one or more new interface cards).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// A locally administered address derived from a VM ordinal
    /// (`02:...` prefix: locally administered, unicast).
    pub fn local(n: u64) -> Self {
        let b = n.to_be_bytes();
        MacAddr([0x02, 0x00, b[4], b[5], b[6], b[7]])
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// An IPv4 address as a host-order `u32`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ipv4Addr(pub u32);

impl Ipv4Addr {
    /// Builds from dotted-quad octets.
    pub fn from_octets(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Addr(u32::from_be_bytes([a, b, c, d]))
    }

    /// The dotted-quad octets.
    pub fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }
}

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

/// A CIDR subnet.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Subnet {
    base: Ipv4Addr,
    prefix: u8,
}

impl Subnet {
    /// Creates `base/prefix`.
    ///
    /// # Panics
    ///
    /// Panics if `prefix > 30` (no usable hosts) or the base has bits
    /// below the mask.
    pub fn new(base: Ipv4Addr, prefix: u8) -> Self {
        assert!(prefix <= 30, "prefix /{prefix} leaves no usable hosts");
        let mask = Subnet { base, prefix }.mask();
        assert!(
            base.0 & !mask == 0,
            "base {base} has host bits set for /{prefix}"
        );
        Subnet { base, prefix }
    }

    /// The network mask as a `u32`.
    pub fn mask(&self) -> u32 {
        if self.prefix == 0 {
            0
        } else {
            u32::MAX << (32 - self.prefix)
        }
    }

    /// The network base address.
    pub fn base(&self) -> Ipv4Addr {
        self.base
    }

    /// The prefix length.
    pub fn prefix(&self) -> u8 {
        self.prefix
    }

    /// Number of assignable host addresses (network and broadcast
    /// excluded).
    pub fn host_count(&self) -> u32 {
        (1u32 << (32 - self.prefix)) - 2
    }

    /// The `n`-th assignable host address (1-based within the
    /// subnet).
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or beyond [`host_count`](Subnet::host_count).
    pub fn host(&self, n: u32) -> Ipv4Addr {
        assert!(
            n >= 1 && n <= self.host_count(),
            "host index {n} outside subnet"
        );
        Ipv4Addr(self.base.0 + n)
    }

    /// Whether `addr` lies inside the subnet.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        addr.0 & self.mask() == self.base.0
    }
}

impl fmt::Display for Subnet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.base, self.prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_formatting_and_derivation() {
        let m = MacAddr::local(0x1234);
        assert_eq!(m.to_string(), "02:00:00:00:12:34");
        assert_ne!(MacAddr::local(1), MacAddr::local(2));
    }

    #[test]
    fn ipv4_round_trip() {
        let ip = Ipv4Addr::from_octets(192, 168, 7, 42);
        assert_eq!(ip.to_string(), "192.168.7.42");
        assert_eq!(ip.octets(), [192, 168, 7, 42]);
    }

    #[test]
    fn subnet_membership_and_hosts() {
        let net = Subnet::new(Ipv4Addr::from_octets(10, 0, 4, 0), 24);
        assert_eq!(net.host_count(), 254);
        assert_eq!(net.host(1), Ipv4Addr::from_octets(10, 0, 4, 1));
        assert_eq!(net.host(254), Ipv4Addr::from_octets(10, 0, 4, 254));
        assert!(net.contains(Ipv4Addr::from_octets(10, 0, 4, 200)));
        assert!(!net.contains(Ipv4Addr::from_octets(10, 0, 5, 1)));
        assert_eq!(net.to_string(), "10.0.4.0/24");
    }

    #[test]
    #[should_panic(expected = "host bits")]
    fn misaligned_base_panics() {
        let _ = Subnet::new(Ipv4Addr::from_octets(10, 0, 4, 1), 24);
    }

    #[test]
    #[should_panic(expected = "outside subnet")]
    fn host_index_bounds() {
        let net = Subnet::new(Ipv4Addr::from_octets(10, 0, 4, 0), 30);
        let _ = net.host(3);
    }
}
