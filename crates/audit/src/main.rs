//! CLI entry point for the workspace determinism linter.
//!
//! ```text
//! cargo run -p gridvm-audit                 # report findings
//! cargo run -p gridvm-audit -- --deny       # CI mode: findings fail
//! cargo run -p gridvm-audit -- --list-rules # print the catalogue
//! cargo run -p gridvm-audit -- --file crates/audit/tests/fixtures/bad_hash.rs \
//!       --treat-as sched                    # scan one file in a given crate context
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use gridvm_audit::config::Allowlist;
use gridvm_audit::rules::RULES;
use gridvm_audit::{find_workspace_root, scan_source, scan_workspace};

struct Options {
    deny: bool,
    list_rules: bool,
    root: Option<PathBuf>,
    file: Option<PathBuf>,
    treat_as: Option<String>,
    hot: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        deny: false,
        list_rules: false,
        root: None,
        file: None,
        treat_as: None,
        hot: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" | "-D" => opts.deny = true,
            "--list-rules" => opts.list_rules = true,
            "--root" => {
                let v = args.next().ok_or("--root needs a path")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--file" => {
                let v = args.next().ok_or("--file needs a path")?;
                opts.file = Some(PathBuf::from(v));
            }
            "--treat-as" => {
                let v = args.next().ok_or("--treat-as needs a crate name")?;
                opts.treat_as = Some(v);
            }
            "--hot" => opts.hot = true,
            "--help" | "-h" => {
                println!(
                    "gridvm-audit: workspace determinism linter\n\n\
                     USAGE: gridvm-audit [--deny] [--list-rules] [--root DIR]\n\
                            [--file PATH [--treat-as CRATE] [--hot]]\n\n\
                     --deny        exit non-zero on any non-allowlisted finding (CI mode)\n\
                     --list-rules  print the rule catalogue and exit\n\
                     --root DIR    workspace root (default: auto-detect from cwd)\n\
                     --file PATH   scan a single file instead of the workspace\n\
                     --treat-as C  with --file: classify the file as library code of crate C\n\
                     --hot         with --file: scan as if listed under [hot_paths]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("gridvm-audit: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        println!("gridvm-audit rule catalogue:\n");
        for rule in RULES {
            println!("  {:<16} {}", rule.name, rule.summary);
        }
        println!("\nSuppressions live in audit.toml ([[allow]] rule/path/reason).");
        return ExitCode::SUCCESS;
    }

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("gridvm-audit: cannot read cwd: {e}");
            return ExitCode::from(2);
        }
    };
    let root = match opts.root.or_else(|| find_workspace_root(&cwd)) {
        Some(r) => r,
        None => {
            eprintln!("gridvm-audit: no workspace root found (looked for Cargo.toml + crates/)");
            return ExitCode::from(2);
        }
    };

    let allow = match load_allowlist(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("gridvm-audit: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(file) = &opts.file {
        return scan_single_file(file, opts.treat_as.as_deref(), opts.hot, &allow, opts.deny);
    }

    let report = match scan_workspace(&root, &allow) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("gridvm-audit: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    for file in &report.files {
        for f in &file.findings {
            println!(
                "{}:{}:{}: [{}] {}",
                file.path, f.line, f.col, f.rule, f.message
            );
        }
    }
    if !report.unused_allows.is_empty() {
        for idx in &report.unused_allows {
            let e = &allow.entries[*idx];
            eprintln!(
                "warning: audit.toml:{}: allow entry (rule `{}`, path `{}`) matched nothing \
                 — delete it if the exception is gone",
                e.line, e.rule, e.path
            );
        }
    }
    let active = report.active_findings();
    println!(
        "gridvm-audit: {} file(s) scanned, {} finding(s), {} allowlisted",
        report.scanned,
        active,
        report.suppressed_findings()
    );
    if active > 0 && opts.deny {
        eprintln!(
            "gridvm-audit: failing (--deny): fix the findings or add audited audit.toml entries"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn scan_single_file(
    file: &Path,
    treat_as: Option<&str>,
    hot: bool,
    allow: &Allowlist,
    deny: bool,
) -> ExitCode {
    let src = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("gridvm-audit: cannot read {}: {e}", file.display());
            return ExitCode::from(2);
        }
    };
    let rel = file.to_string_lossy().replace('\\', "/");
    let mut allow = allow.clone();
    if hot {
        // `--hot` marks the file as a hot path without editing
        // audit.toml — how CI checks the rule still has teeth.
        allow.hot_paths.push(rel.clone());
    }
    let report = scan_source(&rel, &src, treat_as, &allow);
    for f in &report.findings {
        println!(
            "{}:{}:{}: [{}] {}",
            report.path, f.line, f.col, f.rule, f.message
        );
    }
    println!(
        "gridvm-audit: 1 file scanned, {} finding(s), {} allowlisted",
        report.findings.len(),
        report.suppressed.len()
    );
    if !report.findings.is_empty() && deny {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn load_allowlist(root: &Path) -> Result<Allowlist, String> {
    let path = root.join("audit.toml");
    if !path.is_file() {
        return Ok(Allowlist::default());
    }
    let text = std::fs::read_to_string(&path).map_err(|e| format!("reading audit.toml: {e}"))?;
    Allowlist::parse(&text).map_err(|e| e.to_string())
}
