//! CLI entry point for the workspace determinism linter.
//!
//! ```text
//! cargo run -p gridvm-audit                 # report findings
//! cargo run -p gridvm-audit -- --deny       # CI mode: findings fail
//! cargo run -p gridvm-audit -- --list-rules # print the catalogue
//! cargo run -p gridvm-audit -- --deny --baseline audit_baseline.json \
//!       --json audit.json                   # CI ratchet + artifact
//! cargo run -p gridvm-audit -- --file crates/audit/tests/fixtures/bad_hash.rs \
//!       --treat-as sched                    # scan one file in a given crate context
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use gridvm_audit::config::{Allowlist, Baseline};
use gridvm_audit::rules::RULES;
use gridvm_audit::{
    apply_baseline, baseline_entries, find_workspace_root, render_json, render_rules_md,
    scan_source, scan_workspace,
};

struct Options {
    deny: bool,
    list_rules: bool,
    rules_md: bool,
    allow_stale: bool,
    root: Option<PathBuf>,
    file: Option<PathBuf>,
    treat_as: Option<String>,
    hot: bool,
    json: Option<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        deny: false,
        list_rules: false,
        rules_md: false,
        allow_stale: false,
        root: None,
        file: None,
        treat_as: None,
        hot: false,
        json: None,
        baseline: None,
        write_baseline: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" | "-D" => opts.deny = true,
            "--list-rules" => opts.list_rules = true,
            "--rules-md" => opts.rules_md = true,
            "--allow-stale" => opts.allow_stale = true,
            "--root" => {
                let v = args.next().ok_or("--root needs a path")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--file" => {
                let v = args.next().ok_or("--file needs a path")?;
                opts.file = Some(PathBuf::from(v));
            }
            "--treat-as" => {
                let v = args.next().ok_or("--treat-as needs a crate name")?;
                opts.treat_as = Some(v);
            }
            "--hot" => opts.hot = true,
            "--json" => {
                let v = args
                    .next()
                    .ok_or("--json needs a path (or `-` for stdout)")?;
                opts.json = Some(PathBuf::from(v));
            }
            "--baseline" => {
                let v = args.next().ok_or("--baseline needs a path")?;
                opts.baseline = Some(PathBuf::from(v));
            }
            "--write-baseline" => {
                let v = args.next().ok_or("--write-baseline needs a path")?;
                opts.write_baseline = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                println!(
                    "gridvm-audit: workspace determinism linter\n\n\
                     USAGE: gridvm-audit [--deny] [--allow-stale] [--root DIR]\n\
                            [--baseline FILE] [--write-baseline FILE] [--json FILE]\n\
                            [--list-rules] [--rules-md]\n\
                            [--file PATH [--treat-as CRATE] [--hot]]\n\n\
                     --deny            exit non-zero on any unsuppressed finding or (in a\n\
                                       workspace scan) any stale suppression (CI mode)\n\
                     --allow-stale     stale suppressions warn instead of failing deny mode\n\
                     --baseline FILE   findings ratchet: absorb findings budgeted in FILE,\n\
                                       report fixed-but-still-listed entries\n\
                     --write-baseline FILE  write the current active findings as a baseline\n\
                     --json FILE       write the machine-readable report to FILE (`-`: stdout)\n\
                     --list-rules      print the rule catalogue and exit\n\
                     --rules-md        print RULES.md content (CI diffs it) and exit\n\
                     --root DIR        workspace root (default: auto-detect from cwd)\n\
                     --file PATH       scan a single file instead of the workspace\n\
                     --treat-as C      with --file: classify as library code of crate C\n\
                     --hot             with --file: scan as if listed under [hot_paths]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("gridvm-audit: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        println!("gridvm-audit rule catalogue:\n");
        for rule in RULES {
            println!("  {:<20} {}", rule.name, rule.summary);
        }
        println!(
            "\nSuppressions live in audit.toml ([[allow]] rule/path/reason) or inline\n\
             `// audit:allow(rule): <reason>` comments; known findings ride the\n\
             audit_baseline.json ratchet (--baseline)."
        );
        return ExitCode::SUCCESS;
    }
    if opts.rules_md {
        print!("{}", render_rules_md());
        return ExitCode::SUCCESS;
    }

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("gridvm-audit: cannot read cwd: {e}");
            return ExitCode::from(2);
        }
    };
    let root = match opts.root.clone().or_else(|| find_workspace_root(&cwd)) {
        Some(r) => r,
        None => {
            eprintln!("gridvm-audit: no workspace root found (looked for Cargo.toml + crates/)");
            return ExitCode::from(2);
        }
    };

    let allow = match load_allowlist(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("gridvm-audit: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(file) = &opts.file {
        return scan_single_file(file, opts.treat_as.as_deref(), opts.hot, &allow, opts.deny);
    }

    let mut report = match scan_workspace(&root, &allow) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("gridvm-audit: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &opts.write_baseline {
        let text = Baseline::render(
            "findings accepted when their rule landed; ratchet down, never up",
            &baseline_entries(&report),
        );
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("gridvm-audit: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("gridvm-audit: wrote baseline to {}", path.display());
    }

    if let Some(path) = &opts.baseline {
        let base = match std::fs::read_to_string(path) {
            Ok(text) => match Baseline::parse(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("gridvm-audit: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("gridvm-audit: reading {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        apply_baseline(&mut report, &base);
    }

    for file in &report.files {
        for f in &file.findings {
            println!(
                "{}:{}:{}: [{}] {}",
                file.path, f.line, f.col, f.rule, f.message
            );
        }
    }

    // Stale suppressions: dead [[allow]] entries, inline comments that
    // matched nothing, and baseline budgets no longer consumed. Under
    // --deny these fail (the ratchet must shrink); --allow-stale keeps
    // them warnings for local triage runs.
    let mut stale = 0usize;
    for idx in &report.unused_allows {
        let e = &allow.entries[*idx];
        eprintln!(
            "{}: audit.toml:{}: allow entry (rule `{}`, path `{}`) matched nothing \
             — delete it if the exception is gone",
            stale_level(opts.deny, opts.allow_stale),
            e.line,
            e.rule,
            e.path
        );
        stale += 1;
    }
    for (path, ia) in report.unused_inline() {
        eprintln!(
            "{}: {path}:{}: inline audit:allow({}) matched nothing — delete it",
            stale_level(opts.deny, opts.allow_stale),
            ia.line,
            ia.rule
        );
        stale += 1;
    }
    for b in &report.stale_baseline {
        eprintln!(
            "{}: baseline entry ({}, {}) budgets {} finding(s) but only {} remain \
             — ratchet it down",
            stale_level(opts.deny, opts.allow_stale),
            b.entry.path,
            b.entry.rule,
            b.entry.count,
            b.used
        );
        stale += 1;
    }

    if let Some(path) = &opts.json {
        let text = render_json(&report, &allow);
        if path.as_os_str() == "-" {
            print!("{text}");
        } else if let Err(e) = std::fs::write(path, text) {
            eprintln!("gridvm-audit: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    let active = report.active_findings();
    println!(
        "gridvm-audit: {} file(s) scanned, {} finding(s), {} allowlisted, {} inline, \
         {} baselined",
        report.scanned,
        active,
        report.suppressed_findings(),
        report.inline_allowed_findings(),
        report.baselined_findings()
    );
    if opts.deny {
        if active > 0 {
            eprintln!(
                "gridvm-audit: failing (--deny): fix the findings or add audited \
                 audit.toml entries"
            );
            return ExitCode::FAILURE;
        }
        if stale > 0 && !opts.allow_stale {
            eprintln!(
                "gridvm-audit: failing (--deny): {stale} stale suppression(s); delete \
                 them (or pass --allow-stale for a local triage run)"
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn stale_level(deny: bool, allow_stale: bool) -> &'static str {
    if deny && !allow_stale {
        "error"
    } else {
        "warning"
    }
}

fn scan_single_file(
    file: &Path,
    treat_as: Option<&str>,
    hot: bool,
    allow: &Allowlist,
    deny: bool,
) -> ExitCode {
    let src = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("gridvm-audit: cannot read {}: {e}", file.display());
            return ExitCode::from(2);
        }
    };
    let rel = file.to_string_lossy().replace('\\', "/");
    let mut allow = allow.clone();
    if hot {
        // `--hot` marks the file as a hot path without editing
        // audit.toml — how CI checks the rule still has teeth.
        allow.hot_paths.push(rel.clone());
    }
    let report = scan_source(&rel, &src, treat_as, &allow);
    for f in &report.findings {
        println!(
            "{}:{}:{}: [{}] {}",
            report.path, f.line, f.col, f.rule, f.message
        );
    }
    println!(
        "gridvm-audit: 1 file scanned, {} finding(s), {} allowlisted, {} inline",
        report.findings.len(),
        report.suppressed.len(),
        report.inline_allowed.len()
    );
    if !report.findings.is_empty() && deny {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn load_allowlist(root: &Path) -> Result<Allowlist, String> {
    let path = root.join("audit.toml");
    if !path.is_file() {
        return Ok(Allowlist::default());
    }
    let text = std::fs::read_to_string(&path).map_err(|e| format!("reading audit.toml: {e}"))?;
    Allowlist::parse(&text).map_err(|e| e.to_string())
}
