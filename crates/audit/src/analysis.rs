//! The semantic layer under the dataflow-aware rules: a per-file item
//! index (functions, structs, impls, fields), intra-function scope
//! tracking with use-def chains, closure extraction, and a two-pass
//! workspace symbol table for cross-file reference resolution.
//!
//! Everything here is built from the [`crate::lexer`] token stream —
//! no parser dependency, no type inference. The index is deliberately
//! approximate in the same spirit as the token rules: it only needs to
//! answer the questions the semantic rules ask (which function does
//! this token sit in, what is this name bound to here, which names
//! does this closure capture from its environment, what type was this
//! field declared with, which file defines this item), and to answer
//! them deterministically with exact source positions.

use std::collections::BTreeMap;
use std::ops::Range;

use crate::lexer::{Token, TokenKind};

/// What kind of item an index entry describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemKind {
    /// A `fn` (free, method, or trait default).
    Fn,
    /// A `struct` with named fields.
    Struct,
    /// An `enum`.
    Enum,
    /// An `impl` block.
    Impl,
    /// A `trait` definition.
    Trait,
}

/// One indexed function: its name, parameter-list and body token
/// ranges (both inclusive of their delimiters).
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Token index of the name identifier.
    pub name_tok: usize,
    /// Token range of the parenthesized parameter list.
    pub params: Range<usize>,
    /// Token range of the braced body (empty for bodiless trait fns).
    pub body: Range<usize>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
}

/// One named field (or type-annotated binding) with the last path
/// segment of its declared type (`Vec` for `std::vec::Vec<u8>`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FieldDecl {
    /// Field or binding name.
    pub name: String,
    /// Last path-segment identifier of the declared type.
    pub ty: String,
    /// Token index of the name.
    pub tok: usize,
    /// Declared with any `pub` visibility (including `pub(crate)`).
    pub is_pub: bool,
}

/// One indexed struct and its named fields.
#[derive(Clone, Debug)]
pub struct StructItem {
    /// Struct name.
    pub name: String,
    /// Named fields in declaration order (empty for tuple/unit
    /// structs).
    pub fields: Vec<FieldDecl>,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
}

/// The per-file item index.
#[derive(Clone, Debug, Default)]
pub struct FileIndex {
    /// Every function with a body, in source order (methods included).
    pub fns: Vec<FnItem>,
    /// Every struct, in source order.
    pub structs: Vec<StructItem>,
    /// Non-fn top-level item names: (kind, name), for the symbol
    /// table.
    pub items: Vec<(ItemKind, String)>,
    /// Declared type (last path segment) by field/binding name, from
    /// struct fields and type-annotated `let`s. Later declarations
    /// win; the rules only use this for coarse is-it-a-heap-type
    /// queries where collisions are harmless.
    pub type_of: BTreeMap<String, String>,
}

impl FileIndex {
    /// Builds the index from a token stream.
    pub fn build(toks: &[Token]) -> Self {
        let mut idx = FileIndex::default();
        let mut i = 0;
        while i < toks.len() {
            match toks[i].ident() {
                Some("fn") => {
                    if let Some(f) = parse_fn(toks, i) {
                        // Resume after the parameter list, not the
                        // body: nested fns must still be indexed.
                        let next = f.params.end.max(i + 1);
                        idx.fns.push(f);
                        i = next;
                        continue;
                    }
                }
                Some("struct") => {
                    if let Some((s, next)) = parse_struct(toks, i) {
                        for f in &s.fields {
                            idx.type_of.insert(f.name.clone(), f.ty.clone());
                        }
                        idx.items.push((ItemKind::Struct, s.name.clone()));
                        idx.structs.push(s);
                        i = next;
                        continue;
                    }
                }
                Some(kw @ ("enum" | "trait" | "impl")) => {
                    let kind = match kw {
                        "enum" => ItemKind::Enum,
                        "trait" => ItemKind::Trait,
                        _ => ItemKind::Impl,
                    };
                    if kind != ItemKind::Impl {
                        if let Some(name) = toks.get(i + 1).and_then(Token::ident) {
                            idx.items.push((kind, name.to_owned()));
                        }
                    }
                    // Do not skip the block: impls/traits contain fns
                    // the outer loop must still index.
                }
                _ => {}
            }
            // Type-annotated lets feed the name→type table.
            if toks[i].is_ident("let") {
                let mut j = i + 1;
                if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                    j += 1;
                }
                if let Some(name) = toks.get(j).and_then(Token::ident) {
                    if toks.get(j + 1).is_some_and(|t| t.is_punct(':')) {
                        if let Some(ty) = type_name(toks, j + 2) {
                            idx.type_of.insert(name.to_owned(), ty);
                        }
                    }
                }
            }
            i += 1;
        }
        idx
    }

    /// The innermost function whose body contains token `tok`.
    pub fn enclosing_fn(&self, tok: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.body.contains(&tok))
            .min_by_key(|f| f.body.end - f.body.start)
    }

    /// The declared type (last path segment) of `name`, if a struct
    /// field or annotated binding declared it.
    pub fn declared_type(&self, name: &str) -> Option<&str> {
        self.type_of.get(name).map(String::as_str)
    }
}

/// Parses a `fn` starting at `toks[at]` (`at` is the `fn` keyword).
fn parse_fn(toks: &[Token], at: usize) -> Option<FnItem> {
    let name_tok = at + 1;
    let name = toks.get(name_tok)?.ident()?.to_owned();
    // Skip generics between the name and the parameter list.
    let mut j = name_tok + 1;
    if toks.get(j).is_some_and(|t| t.is_punct('<')) {
        let mut depth = 0i32;
        while j < toks.len() {
            match toks[j].kind {
                TokenKind::Punct('<') => depth += 1,
                TokenKind::Punct('>') => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    if !toks.get(j).is_some_and(|t| t.is_punct('(')) {
        return None;
    }
    let params = balanced(toks, j, '(', ')')?;
    // The body is the first brace block before a terminating `;`
    // (where-clauses cannot contain braces outside the body).
    let mut k = params.end;
    while k < toks.len() {
        match toks[k].kind {
            TokenKind::Punct('{') => {
                let body = balanced(toks, k, '{', '}')?;
                return Some(FnItem {
                    name,
                    name_tok,
                    params,
                    body,
                    line: toks[at].line,
                });
            }
            TokenKind::Punct(';') => break,
            _ => {}
        }
        k += 1;
    }
    Some(FnItem {
        name,
        name_tok,
        params,
        body: 0..0,
        line: toks[at].line,
    })
}

/// Parses a `struct` starting at the keyword; returns the item and
/// the token index to resume scanning at.
fn parse_struct(toks: &[Token], at: usize) -> Option<(StructItem, usize)> {
    let name = toks.get(at + 1)?.ident()?.to_owned();
    let line = toks[at].line;
    // Find the `{`, `(` or `;` that decides the struct's shape,
    // skipping generics.
    let mut j = at + 2;
    let mut angle = 0i32;
    while j < toks.len() {
        match toks[j].kind {
            TokenKind::Punct('<') => angle += 1,
            TokenKind::Punct('>') => angle -= 1,
            TokenKind::Punct('{') if angle == 0 => break,
            TokenKind::Punct('(') | TokenKind::Punct(';') if angle == 0 => {
                // Tuple or unit struct: no named fields to index.
                return Some((
                    StructItem {
                        name,
                        fields: Vec::new(),
                        line,
                    },
                    j + 1,
                ));
            }
            _ => {}
        }
        j += 1;
    }
    let body = balanced(toks, j, '{', '}')?;
    let mut fields = Vec::new();
    let mut k = body.start + 1;
    while k + 1 < body.end {
        // At field position: `[pub [(..)]] name : Type , ...`
        if let Some(fname) = toks[k].ident() {
            if fname != "pub" && toks.get(k + 1).is_some_and(|t| t.is_punct(':')) {
                if let Some(ty) = type_name(toks, k + 2) {
                    // `pub name` or `pub(crate) name` — the token just
                    // before the field name decides visibility.
                    let is_pub = k > body.start + 1
                        && (toks[k - 1].is_ident("pub") || toks[k - 1].is_punct(')'));
                    fields.push(FieldDecl {
                        name: fname.to_owned(),
                        ty,
                        tok: k,
                        is_pub,
                    });
                }
                // Skip to the comma separating fields (balance
                // everything nested inside the type).
                let mut depth = 0i32;
                while k < body.end - 1 {
                    match toks[k].kind {
                        TokenKind::Punct('<') | TokenKind::Punct('(') | TokenKind::Punct('[') => {
                            depth += 1;
                        }
                        TokenKind::Punct('>') | TokenKind::Punct(')') | TokenKind::Punct(']') => {
                            depth -= 1;
                        }
                        TokenKind::Punct(',') if depth <= 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
            }
        }
        k += 1;
    }
    Some((StructItem { name, fields, line }, body.end))
}

/// The last path-segment identifier of the type starting at
/// `toks[at]`, before any generic arguments: `Vec` for
/// `std::vec::Vec<u8>`, `Mutex` for `&'a mut sync::Mutex<T>`.
pub fn type_name(toks: &[Token], at: usize) -> Option<String> {
    let mut last: Option<String> = None;
    let mut j = at;
    while j < toks.len() {
        match &toks[j].kind {
            TokenKind::Ident(s) => {
                if s != "mut" && s != "dyn" && s != "impl" && s != "const" {
                    last = Some(s.clone());
                }
            }
            TokenKind::Punct('&') | TokenKind::Punct('*') | TokenKind::Punct(':') => {}
            TokenKind::Lifetime => {}
            _ => break,
        }
        j += 1;
    }
    last
}

/// The token range of a balanced delimiter pair opening at
/// `toks[open]`, inclusive of both delimiters.
pub fn balanced(toks: &[Token], open: usize, l: char, r: char) -> Option<Range<usize>> {
    if !toks.get(open).is_some_and(|t| t.is_punct(l)) {
        return None;
    }
    let mut depth = 0usize;
    let mut j = open;
    while j < toks.len() {
        if toks[j].is_punct(l) {
            depth += 1;
        } else if toks[j].is_punct(r) {
            depth -= 1;
            if depth == 0 {
                return Some(open..j + 1);
            }
        }
        j += 1;
    }
    None
}

/// How a name was introduced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BindKind {
    /// A `let` binding.
    Let,
    /// A function parameter.
    Param,
    /// A `for`-loop pattern variable.
    ForPat,
    /// A closure parameter.
    ClosureParam,
}

/// One binding visible somewhere inside a function body.
#[derive(Clone, Debug)]
pub struct Binding {
    /// Bound name.
    pub name: String,
    /// Token index of the name at its definition site.
    pub def_tok: usize,
    /// Brace depth the binding was introduced at (function body = 1).
    pub depth: usize,
    /// How the name was introduced.
    pub kind: BindKind,
    /// True when the binding holds a mutable borrow: `let r = &mut x`
    /// or a `&mut T` parameter annotation.
    pub mut_borrow: bool,
    /// Token range of the `let` initializer expression (empty when
    /// there is none).
    pub init: Range<usize>,
}

/// Use-def chains for one function body: every identifier use resolved
/// to the innermost live binding of that name at that point.
#[derive(Clone, Debug, Default)]
pub struct UseDef {
    /// All bindings, in definition order.
    pub bindings: Vec<Binding>,
    /// Use-site token index → index into `bindings`.
    pub resolved: BTreeMap<usize, usize>,
}

impl UseDef {
    /// Builds use-def chains over `f`'s parameter list and body.
    pub fn build(toks: &[Token], f: &FnItem) -> Self {
        let mut ud = UseDef::default();
        let mut live: Vec<usize> = Vec::new(); // indices into ud.bindings
        let mut scopes: Vec<usize> = Vec::new(); // live.len() watermark per open brace

        // Parameters: `name : Type` pairs at paren depth 1.
        let mut depth = 0usize;
        let mut j = f.params.start;
        while j < f.params.end {
            match toks[j].kind {
                TokenKind::Punct('(') | TokenKind::Punct('<') | TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct('>') | TokenKind::Punct(']') => {
                    depth = depth.saturating_sub(1);
                }
                _ => {
                    if depth == 1 {
                        if let Some(name) = toks[j].ident() {
                            if name == "self" {
                                ud.push_binding(&mut live, name, j, 1, BindKind::Param, false);
                            } else if name != "mut"
                                && toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
                            {
                                let mut_borrow = toks.get(j + 2).is_some_and(|t| t.is_punct('&'))
                                    && toks.get(j + 3).is_some_and(|t| {
                                        t.is_ident("mut") || t.kind == TokenKind::Lifetime
                                    })
                                    && (toks.get(j + 3).is_some_and(|t| t.is_ident("mut"))
                                        || toks.get(j + 4).is_some_and(|t| t.is_ident("mut")));
                                ud.push_binding(&mut live, name, j, 1, BindKind::Param, mut_borrow);
                            }
                        }
                    }
                }
            }
            j += 1;
        }

        // Body walk.
        let mut depth = 0usize;
        let mut i = f.body.start;
        while i < f.body.end {
            match toks[i].kind {
                TokenKind::Punct('{') => {
                    depth += 1;
                    scopes.push(live.len());
                }
                TokenKind::Punct('}') => {
                    depth = depth.saturating_sub(1);
                    if let Some(mark) = scopes.pop() {
                        live.truncate(mark);
                    }
                }
                _ => {
                    if toks[i].is_ident("let") {
                        let mut j = i + 1;
                        if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                            j += 1;
                        }
                        if let Some(name) = toks.get(j).and_then(Token::ident) {
                            // `let name [: Ty] = init ;` — resolve uses in
                            // the initializer against the *old* scope first.
                            let mut k = j + 1;
                            // Skip a type annotation up to `=` or `;`.
                            let mut angle = 0i32;
                            while k < f.body.end {
                                match toks[k].kind {
                                    TokenKind::Punct('<') => angle += 1,
                                    TokenKind::Punct('>') => angle -= 1,
                                    TokenKind::Punct('=') if angle <= 0 => break,
                                    TokenKind::Punct(';') if angle <= 0 => break,
                                    _ => {}
                                }
                                k += 1;
                            }
                            let init_start = k + 1;
                            let mut init_end = init_start;
                            if toks.get(k).is_some_and(|t| t.is_punct('=')) {
                                let mut d = 0i32;
                                let mut m = init_start;
                                while m < f.body.end {
                                    match toks[m].kind {
                                        TokenKind::Punct('(')
                                        | TokenKind::Punct('[')
                                        | TokenKind::Punct('{') => d += 1,
                                        TokenKind::Punct(')')
                                        | TokenKind::Punct(']')
                                        | TokenKind::Punct('}') => {
                                            if d == 0 {
                                                break;
                                            }
                                            d -= 1;
                                        }
                                        TokenKind::Punct(';') if d == 0 => break,
                                        _ => {}
                                    }
                                    m += 1;
                                }
                                init_end = m;
                                for u in init_start..init_end {
                                    ud.resolve_use(toks, u, &live);
                                }
                            }
                            let mut_borrow = toks.get(init_start).is_some_and(|t| t.is_punct('&'))
                                && toks.get(init_start + 1).is_some_and(|t| t.is_ident("mut"));
                            let bidx = ud.push_binding(
                                &mut live,
                                name,
                                j,
                                depth,
                                BindKind::Let,
                                mut_borrow,
                            );
                            ud.bindings[bidx].init = init_start..init_end;
                            i = init_end.max(j + 1);
                            continue;
                        }
                    }
                    if toks[i].is_ident("for") {
                        // `for pat in ...`: bind every ident in the
                        // pattern (tuple patterns included).
                        let mut j = i + 1;
                        while j < f.body.end && !toks[j].is_ident("in") {
                            if let Some(name) = toks[j].ident() {
                                if name != "mut" && name != "_" {
                                    ud.push_binding(
                                        &mut live,
                                        name,
                                        j,
                                        depth + 1,
                                        BindKind::ForPat,
                                        false,
                                    );
                                }
                            }
                            j += 1;
                            if j - i > 16 {
                                break; // not a for-pattern shape we model
                            }
                        }
                        i = j;
                        continue;
                    }
                    ud.resolve_use(toks, i, &live);
                }
            }
            i += 1;
        }
        ud
    }

    fn push_binding(
        &mut self,
        live: &mut Vec<usize>,
        name: &str,
        def_tok: usize,
        depth: usize,
        kind: BindKind,
        mut_borrow: bool,
    ) -> usize {
        self.bindings.push(Binding {
            name: name.to_owned(),
            def_tok,
            depth,
            kind,
            mut_borrow,
            init: 0..0,
        });
        let idx = self.bindings.len() - 1;
        live.push(idx);
        idx
    }

    fn resolve_use(&mut self, toks: &[Token], i: usize, live: &[usize]) {
        let Some(name) = toks[i].ident() else { return };
        // Field and method names after `.` are not variable uses, nor
        // are path segments before `::` or macro names before `!`.
        if i > 0 && toks[i - 1].is_punct('.') {
            return;
        }
        if toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        {
            return;
        }
        if let Some(bidx) = live
            .iter()
            .rev()
            .find(|&&b| self.bindings[b].name == name && self.bindings[b].def_tok != i)
        {
            self.resolved.insert(i, *bidx);
        }
    }

    /// The binding a use site resolves to, if any.
    pub fn binding_for(&self, use_tok: usize) -> Option<&Binding> {
        self.resolved.get(&use_tok).map(|&b| &self.bindings[b])
    }
}

/// One closure expression found inside a function body.
#[derive(Clone, Debug)]
pub struct ClosureExpr {
    /// Token index where the closure starts (`move` or the opening
    /// `|`).
    pub start: usize,
    /// True for `move` closures.
    pub is_move: bool,
    /// Parameter names.
    pub params: Vec<String>,
    /// Token range of the closure body (block or expression).
    pub body: Range<usize>,
}

/// Extracts closures from `range`. A `|` opens a closure when it
/// follows a position where an expression may begin (after `(`, `,`,
/// `=`, `{`, `return`, `move`, `;`, or `=>`); `a | b` and `a || b`
/// stay bitwise/logical ops.
pub fn find_closures(toks: &[Token], range: Range<usize>) -> Vec<ClosureExpr> {
    let mut out = Vec::new();
    let mut i = range.start;
    while i < range.end {
        let (start, is_move, bar) =
            if toks[i].is_ident("move") && toks.get(i + 1).is_some_and(|t| t.is_punct('|')) {
                (i, true, i + 1)
            } else if toks[i].is_punct('|') && closure_position(toks, i) {
                (i, false, i)
            } else {
                i += 1;
                continue;
            };
        // Parameter list: idents up to the closing `|` (or an empty
        // `||`).
        let mut params = Vec::new();
        let mut j = bar + 1;
        if toks.get(j).is_some_and(|t| t.is_punct('|')) {
            j += 1; // `||`
        } else {
            let mut depth = 0i32;
            let mut in_type = false;
            while j < range.end {
                match toks[j].kind {
                    TokenKind::Punct('(') | TokenKind::Punct('<') | TokenKind::Punct('[') => {
                        depth += 1;
                    }
                    TokenKind::Punct(')') | TokenKind::Punct('>') | TokenKind::Punct(']') => {
                        depth -= 1;
                    }
                    TokenKind::Punct('|') if depth == 0 => {
                        j += 1;
                        break;
                    }
                    TokenKind::Punct(':') if depth == 0 => in_type = true,
                    TokenKind::Punct(',') if depth == 0 => in_type = false,
                    _ => {
                        if depth == 0 && !in_type {
                            if let Some(name) = toks[j].ident() {
                                if name != "mut" && name != "_" {
                                    params.push(name.to_owned());
                                }
                            }
                        }
                    }
                }
                j += 1;
            }
        }
        // Skip a `-> Type` return annotation.
        if toks.get(j).is_some_and(|t| t.is_punct('-'))
            && toks.get(j + 1).is_some_and(|t| t.is_punct('>'))
        {
            j += 2;
            while j < range.end && !toks[j].is_punct('{') {
                j += 1;
            }
        }
        let body = if toks.get(j).is_some_and(|t| t.is_punct('{')) {
            balanced(toks, j, '{', '}').unwrap_or(j..range.end)
        } else {
            // Expression body: to the first `,` or `)` at depth 0.
            let mut d = 0i32;
            let mut m = j;
            while m < range.end {
                match toks[m].kind {
                    TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => d += 1,
                    TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                        if d == 0 {
                            break;
                        }
                        d -= 1;
                    }
                    TokenKind::Punct(',') | TokenKind::Punct(';') if d == 0 => break,
                    _ => {}
                }
                m += 1;
            }
            j..m
        };
        let next = body.end.max(j + 1);
        out.push(ClosureExpr {
            start,
            is_move,
            params,
            body,
        });
        i = next;
    }
    out
}

/// True when a `|` at `i` sits where a closure may begin.
fn closure_position(toks: &[Token], i: usize) -> bool {
    if i == 0 {
        return true;
    }
    match &toks[i - 1].kind {
        TokenKind::Punct('(') | TokenKind::Punct(',') | TokenKind::Punct('{') => true,
        TokenKind::Punct('=') => true, // `= |..|`, and `=> |..|` ends with '='? no: '>' — handled below
        TokenKind::Punct('>') => toks.get(i.wrapping_sub(2)).is_some_and(|t| t.is_punct('=')),
        TokenKind::Ident(s) => s == "move" || s == "return" || s == "else",
        _ => false,
    }
}

/// Where one symbol is defined.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SymbolDef {
    /// Workspace-relative path of the defining file.
    pub path: String,
    /// Item kind at the definition.
    pub kind: ItemKind,
}

/// The two-pass workspace symbol table: pass one feeds every file's
/// [`FileIndex`] in via [`add_file`](Self::add_file); pass two lets
/// rules resolve names across files (`which file defines SiteRuntime?
/// is `outbox` a field of a shard-owned struct?`).
#[derive(Clone, Debug, Default)]
pub struct SymbolTable {
    types: BTreeMap<String, Vec<SymbolDef>>,
    /// Field name → owning struct names, defining paths, and whether
    /// the declaration carries `pub` visibility.
    fields: BTreeMap<String, Vec<(String, String, bool)>>,
}

impl SymbolTable {
    /// Registers one file's items (pass one).
    pub fn add_file(&mut self, path: &str, idx: &FileIndex) {
        for (kind, name) in &idx.items {
            self.types.entry(name.clone()).or_default().push(SymbolDef {
                path: path.to_owned(),
                kind: *kind,
            });
        }
        for s in &idx.structs {
            for f in &s.fields {
                self.fields.entry(f.name.clone()).or_default().push((
                    s.name.clone(),
                    path.to_owned(),
                    f.is_pub,
                ));
            }
        }
    }

    /// Files defining a type named `name`.
    pub fn type_defs(&self, name: &str) -> &[SymbolDef] {
        self.types.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// `(struct, path, is_pub)` triples declaring a field named
    /// `name`.
    pub fn field_owners(&self, name: &str) -> &[(String, String, bool)] {
        self.fields.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// True when `name` is a type defined in a file whose path ends
    /// with `suffix` — the cross-file query behind shard-state-escape.
    pub fn type_defined_in(&self, name: &str, suffix: &str) -> bool {
        self.type_defs(name)
            .iter()
            .any(|d| d.path.ends_with(suffix))
    }

    /// True when `name` is a struct field declared in a file whose
    /// path ends with `suffix`.
    pub fn field_defined_in(&self, name: &str, suffix: &str) -> bool {
        self.field_owners(name)
            .iter()
            .any(|(_, p, _)| p.ends_with(suffix))
    }
}

/// Canonical receiver of a method call: the identifier/field chain
/// feeding `.method(` at token `dot`, walking backwards with index
/// expressions collapsed to `[_]`. `sites[dst.index()].lock()` →
/// `sites[_]`; `self.inner.lock()` → `self.inner`.
pub fn receiver_chain(toks: &[Token], dot: usize) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut j = dot; // toks[dot] is the `.`
    loop {
        if j == 0 {
            break;
        }
        let prev = j - 1;
        match &toks[prev].kind {
            TokenKind::Punct(']') => {
                // Balance back to the opening `[`.
                let mut depth = 0usize;
                let mut k = prev;
                loop {
                    match toks[k].kind {
                        TokenKind::Punct(']') => depth += 1,
                        TokenKind::Punct('[') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if k == 0 {
                        break;
                    }
                    k -= 1;
                }
                parts.push("[_]".to_owned());
                j = k;
            }
            TokenKind::Punct(')') => {
                // A call result: stop — the receiver is a temporary.
                break;
            }
            TokenKind::Ident(s) => {
                parts.push(s.clone());
                j = prev;
                // Continue through `.` or `::` chains.
                if j >= 1 && toks[j - 1].is_punct('.') {
                    j -= 1;
                    continue;
                }
                if j >= 2 && toks[j - 1].is_punct(':') && toks[j - 2].is_punct(':') {
                    parts.push("::".to_owned());
                    j -= 2;
                    continue;
                }
                break;
            }
            _ => break,
        }
    }
    parts.reverse();
    let mut out = String::new();
    for (i, p) in parts.iter().enumerate() {
        if p == "[_]" || p == "::" {
            out.push_str(if p == "::" { "" } else { "[_]" });
        } else {
            if i > 0 && parts[i - 1] != "::" && !out.is_empty() && !out.ends_with("[_]") {
                out.push('.');
            }
            if i > 0 && parts[i - 1] == "::" {
                out.push_str("::");
            }
            out.push_str(p);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    #[test]
    fn indexes_fns_structs_and_fields() {
        let src = "\
pub struct Cache {
    pub map: BTreeMap<u64, Vec<u8>>,
    name: String,
}
impl Cache {
    pub fn get(&mut self, k: u64) -> Option<&[u8]> {
        self.map.get(&k).map(Vec::as_slice)
    }
}
fn helper<T: Clone>(x: T) -> T { x.clone() }
";
        let toks = tokenize(src);
        let idx = FileIndex::build(&toks);
        assert_eq!(idx.structs.len(), 1);
        assert_eq!(
            idx.structs[0]
                .fields
                .iter()
                .map(|f| (f.name.as_str(), f.ty.as_str()))
                .collect::<Vec<_>>(),
            vec![("map", "BTreeMap"), ("name", "String")]
        );
        let names: Vec<_> = idx.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["get", "helper"]);
        assert_eq!(idx.declared_type("map"), Some("BTreeMap"));
        assert_eq!(idx.declared_type("name"), Some("String"));
    }

    #[test]
    fn enclosing_fn_picks_the_innermost_body() {
        let src = "fn outer() { fn inner() { let x = 1; } let y = 2; }";
        let toks = tokenize(src);
        let idx = FileIndex::build(&toks);
        let x_tok = toks.iter().position(|t| t.is_ident("x")).unwrap();
        let y_tok = toks.iter().position(|t| t.is_ident("y")).unwrap();
        assert_eq!(idx.enclosing_fn(x_tok).unwrap().name, "inner");
        assert_eq!(idx.enclosing_fn(y_tok).unwrap().name, "outer");
    }

    #[test]
    fn use_def_resolves_params_lets_and_scopes() {
        let src = "\
fn f(a: u32, b: &mut Vec<u8>) {
    let c = a + 1;
    {
        let c = c + 2;
        use_it(c);
    }
    use_it(c);
    b.push(1);
}
";
        let toks = tokenize(src);
        let idx = FileIndex::build(&toks);
        let f = &idx.fns[0];
        let ud = UseDef::build(&toks, f);
        // `b` is a &mut param.
        let b = ud.bindings.iter().find(|b| b.name == "b").unwrap();
        assert!(b.mut_borrow, "{b:?}");
        assert_eq!(b.kind, BindKind::Param);
        // The inner use_it(c) resolves to the inner (shadowing) let;
        // the outer one to the outer let.
        let c_uses: Vec<usize> = ud
            .resolved
            .iter()
            .filter(|(&u, _)| toks[u].is_ident("c"))
            .map(|(_, &b)| b)
            .collect();
        let depths: Vec<usize> = c_uses.iter().map(|&b| ud.bindings[b].depth).collect();
        assert!(depths.contains(&1) && depths.contains(&2), "{depths:?}");
    }

    #[test]
    fn mut_borrow_lets_are_marked() {
        let src = "fn f(v: &mut Vec<u8>) { let r = &mut v[0]; touch(r); }";
        let toks = tokenize(src);
        let idx = FileIndex::build(&toks);
        let ud = UseDef::build(&toks, &idx.fns[0]);
        let r = ud.bindings.iter().find(|b| b.name == "r").unwrap();
        assert!(r.mut_borrow);
    }

    #[test]
    fn closures_are_found_with_move_and_captures() {
        let src = "\
fn f(x: u32) {
    run(move |a, b| a + b + x);
    run(|y| y + x);
    let z = 1 | 2;
    let w = xel | mask;
}
";
        let toks = tokenize(src);
        let idx = FileIndex::build(&toks);
        let cls = find_closures(&toks, idx.fns[0].body.clone());
        assert_eq!(cls.len(), 2, "{cls:?}");
        assert!(cls[0].is_move);
        assert_eq!(cls[0].params, vec!["a", "b"]);
        assert!(!cls[1].is_move);
        assert_eq!(cls[1].params, vec!["y"]);
    }

    #[test]
    fn empty_and_typed_closure_params() {
        let src = "fn f() { run(|| 1); run(move |s: &mut State, en: &mut Engine| s.go(en)); }";
        let toks = tokenize(src);
        let idx = FileIndex::build(&toks);
        let cls = find_closures(&toks, idx.fns[0].body.clone());
        assert_eq!(cls.len(), 2);
        assert!(cls[0].params.is_empty());
        assert_eq!(cls[1].params, vec!["s", "en"]);
    }

    #[test]
    fn receiver_chains_canonicalize_indexing() {
        let src = "fn f() { sites[dst.index()].lock(); self.inner.lock(); free(); }";
        let toks = tokenize(src);
        let lock_dots: Vec<usize> = (0..toks.len())
            .filter(|&i| {
                toks[i].is_punct('.') && toks.get(i + 1).is_some_and(|t| t.is_ident("lock"))
            })
            .collect();
        assert_eq!(receiver_chain(&toks, lock_dots[0]), "sites[_]");
        assert_eq!(receiver_chain(&toks, lock_dots[1]), "self.inner");
    }

    #[test]
    fn symbol_table_resolves_across_files() {
        let shard =
            "pub struct SiteState { outbox: Vec<Msg> } pub struct SiteRuntime { en: Engine }";
        let other = "pub struct Other { outbox_count: u64 }";
        let mut table = SymbolTable::default();
        table.add_file(
            "crates/simcore/src/shard.rs",
            &FileIndex::build(&tokenize(shard)),
        );
        table.add_file(
            "crates/core/src/other.rs",
            &FileIndex::build(&tokenize(other)),
        );
        assert!(table.type_defined_in("SiteRuntime", "simcore/src/shard.rs"));
        assert!(!table.type_defined_in("SiteRuntime", "core/src/other.rs"));
        assert!(table.field_defined_in("outbox", "simcore/src/shard.rs"));
        assert!(!table.field_defined_in("outbox_count", "simcore/src/shard.rs"));
    }
}
