//! A lightweight, comment- and string-aware Rust tokenizer.
//!
//! The determinism rules in [`crate::rules`] only need to see *code*:
//! a `HashMap` mentioned in a doc comment or a format string is not a
//! hazard. This scanner therefore discards comments (line, nested
//! block) and the contents of every string/char/byte literal (plain,
//! raw with any number of `#`s, byte, raw-byte) while preserving the
//! line and column of every surviving token — exactly the information
//! a diagnostic needs.
//!
//! It is deliberately not a full Rust lexer: numeric literals are
//! folded into a single token kind, punctuation is emitted one
//! character at a time (`::` is two `:` tokens) and no keyword table
//! exists. Rules match short token sequences, for which this is both
//! sufficient and easy to reason about.

/// What a token is, with enough payload for rule matching.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `for`, `unwrap`, ...).
    Ident(String),
    /// One punctuation character (`.`, `:`, `{`, `+`, ...).
    Punct(char),
    /// A string, raw-string, byte-string, or char literal (contents
    /// discarded).
    Literal,
    /// A numeric literal (digits folded, value discarded).
    Number,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
}

/// One token with its source position (1-based line and column).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The token's kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column of the token's first character.
    pub col: u32,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True when this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.ident() == Some(name)
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenizes `src`, discarding comments and literal contents.
pub fn tokenize(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(b) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => {
                while let Some(c) = cur.peek() {
                    if c == b'\n' {
                        break;
                    }
                    cur.bump();
                }
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1u32;
                while depth > 0 {
                    match (cur.peek(), cur.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
            }
            b'"' => {
                eat_string(&mut cur);
                out.push(Token {
                    kind: TokenKind::Literal,
                    line,
                    col,
                });
            }
            b'r' | b'b' if starts_prefixed_literal(&cur) => {
                eat_prefixed_literal(&mut cur);
                out.push(Token {
                    kind: TokenKind::Literal,
                    line,
                    col,
                });
            }
            b'\'' => {
                if is_lifetime(&cur) {
                    cur.bump(); // the quote
                    while cur.peek().is_some_and(is_ident_continue) {
                        cur.bump();
                    }
                    out.push(Token {
                        kind: TokenKind::Lifetime,
                        line,
                        col,
                    });
                } else {
                    eat_char_literal(&mut cur);
                    out.push(Token {
                        kind: TokenKind::Literal,
                        line,
                        col,
                    });
                }
            }
            _ if is_ident_start(b) => {
                let mut text = String::new();
                while let Some(c) = cur.peek() {
                    if is_ident_continue(c) {
                        text.push(c as char);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    kind: TokenKind::Ident(text),
                    line,
                    col,
                });
            }
            _ if b.is_ascii_digit() => {
                eat_number(&mut cur);
                out.push(Token {
                    kind: TokenKind::Number,
                    line,
                    col,
                });
            }
            _ => {
                cur.bump();
                out.push(Token {
                    kind: TokenKind::Punct(b as char),
                    line,
                    col,
                });
            }
        }
    }
    out
}

/// True when the cursor sits on `r"`, `r#`, `b"`, `b'`, `br"`, `br#`.
fn starts_prefixed_literal(cur: &Cursor<'_>) -> bool {
    matches!(
        (cur.peek(), cur.peek_at(1), cur.peek_at(2)),
        (Some(b'r'), Some(b'"' | b'#'), _)
            | (Some(b'b'), Some(b'"' | b'\''), _)
            | (Some(b'b'), Some(b'r'), Some(b'"' | b'#'))
    )
}

/// True when a `'` begins a lifetime rather than a char literal: the
/// next character starts an identifier and the character after that
/// identifier-ish char is not a closing `'` (so `'a'` is a char but
/// `'a,` is a lifetime).
fn is_lifetime(cur: &Cursor<'_>) -> bool {
    match cur.peek_at(1) {
        Some(c) if is_ident_start(c) => cur.peek_at(2) != Some(b'\''),
        _ => false,
    }
}

fn eat_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        match c {
            b'\\' => {
                cur.bump();
            }
            b'"' => break,
            _ => {}
        }
    }
}

fn eat_char_literal(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        match c {
            b'\\' => {
                cur.bump();
            }
            b'\'' => break,
            _ => {}
        }
    }
}

fn eat_prefixed_literal(cur: &mut Cursor<'_>) {
    // Consume the `r` / `b` / `br` prefix.
    if cur.peek() == Some(b'b') {
        cur.bump();
    }
    if cur.peek() == Some(b'r') {
        cur.bump();
        // Raw string: count the `#`s, then scan for `"` followed by
        // that many `#`s. Escapes are inert inside raw strings.
        let mut hashes = 0usize;
        while cur.peek() == Some(b'#') {
            hashes += 1;
            cur.bump();
        }
        cur.bump(); // opening quote
        'scan: while let Some(c) = cur.bump() {
            if c == b'"' {
                for i in 0..hashes {
                    if cur.peek_at(i) != Some(b'#') {
                        continue 'scan;
                    }
                }
                for _ in 0..hashes {
                    cur.bump();
                }
                break;
            }
        }
    } else if cur.peek() == Some(b'\'') {
        eat_char_literal(cur);
    } else {
        eat_string(cur);
    }
}

fn eat_number(cur: &mut Cursor<'_>) {
    while let Some(c) = cur.peek() {
        if c.is_ascii_alphanumeric() || c == b'_' {
            cur.bump();
        } else if c == b'.' && cur.peek_at(1).is_some_and(|d| d.is_ascii_digit()) {
            // `1.5` continues the number; `1..5` does not.
            cur.bump();
        } else {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokenize(src)
            .into_iter()
            .filter_map(|t| t.ident().map(str::to_owned))
            .collect()
    }

    #[test]
    fn comments_and_strings_are_invisible() {
        let src = r##"
            // HashMap in a line comment
            /* HashMap in /* a nested */ block */
            let s = "HashMap in a string";
            let r = r#"HashMap in a raw "quoted" string"#;
            let b = b"HashMap bytes";
            let real = HashMap::new();
        "##;
        let ids = idents(src);
        assert_eq!(
            ids.iter().filter(|i| *i == "HashMap").count(),
            1,
            "only the code mention survives: {ids:?}"
        );
    }

    #[test]
    fn positions_are_one_based_lines_and_columns() {
        let toks = tokenize("ab\n  cd");
        assert_eq!(toks[0].ident(), Some("ab"));
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!(toks[1].ident(), Some("cd"));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = tokenize("fn f<'a>(x: &'a str) { let c = 'x'; }");
        let lifetimes = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let literals = toks.iter().filter(|t| t.kind == TokenKind::Literal).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(literals, 1);
    }

    #[test]
    fn escaped_quotes_do_not_end_literals() {
        let toks = tokenize(r#"let a = "x\"y"; let c = '\''; after"#);
        assert!(toks.iter().any(|t| t.is_ident("after")));
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokenKind::Literal).count(),
            2
        );
    }

    #[test]
    fn numbers_fold_and_ranges_survive() {
        let toks = tokenize("for i in 0..10_000 {}");
        let nums = toks.iter().filter(|t| t.kind == TokenKind::Number).count();
        let dots = toks.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(nums, 2);
        assert_eq!(dots, 2, "the `..` survives as two dots");
    }
}
