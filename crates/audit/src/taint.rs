//! Intra-function taint propagation for the `iter-order-taint` rule.
//!
//! The hazard: a value *derived from the iteration order of an
//! unordered container* flowing into something order-sensitive — a
//! `schedule_*` time argument (event order becomes hasher-dependent)
//! or a metrics write (merged statistics become visit-order
//! dependent). The float-accum rule catches the classic `sum()` case;
//! this pass follows the value through `let` bindings, loop
//! variables, reassignments and compound assignments inside one
//! function, using the [`crate::analysis::UseDef`] chains.
//!
//! Sources are iteration calls (`iter`, `iter_mut`, `keys`, `values`,
//! `values_mut`, `drain`, `into_iter`) whose receiver is a name the
//! file declares with a hash-container type. Propagation runs to a
//! fixpoint, so ordering of `let`s does not matter. The analysis is
//! deliberately conservative in both directions a linter can afford:
//! taint is never killed by reassignment from a clean value, and only
//! named bindings (not fields or temporaries chained through calls)
//! carry it.

use std::collections::BTreeSet;
use std::ops::Range;

use crate::analysis::{balanced, FnItem, UseDef};
use crate::lexer::{Token, TokenKind};

/// Iterator methods whose results inherit the receiver's (unordered)
/// visit order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
];

/// One tainted value reaching an order-sensitive sink.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaintHit {
    /// Token index of the sink call identifier.
    pub sink_tok: usize,
    /// The sink call's name (`schedule_in`, `counter_add`, ...).
    pub sink: String,
    /// The tainted name observed inside the sink argument.
    pub name: String,
    /// 1-based line of the source that introduced the taint.
    pub source_line: u32,
}

/// Taint state for one function body.
pub struct TaintMap<'a> {
    toks: &'a [Token],
    f: &'a FnItem,
    ud: &'a UseDef,
    hash_names: &'a [String],
    /// Tainted binding indices (into `ud.bindings`) with the line of
    /// the source that tainted them.
    tainted: Vec<Option<u32>>,
}

impl<'a> TaintMap<'a> {
    /// Runs propagation to a fixpoint over `f`'s body.
    pub fn build(
        toks: &'a [Token],
        f: &'a FnItem,
        ud: &'a UseDef,
        hash_names: &'a [String],
    ) -> Self {
        let mut tm = TaintMap {
            toks,
            f,
            ud,
            hash_names,
            tainted: vec![None; ud.bindings.len()],
        };
        // Fixpoint: each pass can only add taint, and there are at
        // most `bindings` additions.
        for _ in 0..tm.ud.bindings.len().max(1) {
            if !tm.propagate_once() {
                break;
            }
        }
        tm
    }

    /// True when the binding at `idx` is tainted.
    pub fn is_tainted(&self, idx: usize) -> bool {
        self.tainted[idx].is_some()
    }

    /// One propagation pass; returns whether anything changed.
    fn propagate_once(&mut self) -> bool {
        let mut changed = false;
        // `let x = <tainted>`.
        for b in 0..self.ud.bindings.len() {
            if self.tainted[b].is_none() && !self.ud.bindings[b].init.is_empty() {
                if let Some(line) = self.range_taint(self.ud.bindings[b].init.clone()) {
                    self.tainted[b] = Some(line);
                    changed = true;
                }
            }
        }
        // `for pat in <tainted header> { .. }`.
        let body = self.f.body.clone();
        let mut i = body.start;
        while i < body.end {
            if self.toks[i].is_ident("for") {
                let mut j = i + 1;
                while j < body.end && !self.toks[j].is_ident("in") && j - i <= 16 {
                    j += 1;
                }
                if self.toks.get(j).is_some_and(|t| t.is_ident("in")) {
                    let header_start = j + 1;
                    let mut k = header_start;
                    let mut depth = 0i32;
                    while k < body.end {
                        match self.toks[k].kind {
                            TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
                            TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
                            TokenKind::Punct('{') if depth == 0 => break,
                            _ => {}
                        }
                        k += 1;
                    }
                    if let Some(line) = self.range_taint(header_start..k) {
                        for (bidx, b) in self.ud.bindings.iter().enumerate() {
                            if b.def_tok > i && b.def_tok < j && self.tainted[bidx].is_none() {
                                self.tainted[bidx] = Some(line);
                                changed = true;
                            }
                        }
                    }
                    i = k;
                    continue;
                }
            }
            // Reassignment `x = rhs;` and compound `x += rhs;`.
            if self.toks[i].is_punct('=')
                && !self.toks.get(i + 1).is_some_and(|t| t.is_punct('='))
                && i > 0
            {
                let (lhs, is_plain) = match &self.toks[i - 1].kind {
                    TokenKind::Ident(_) => (i - 1, true),
                    TokenKind::Punct('+' | '-' | '*' | '/' | '^' | '%' | '&' | '|') if i > 1 => {
                        (i - 2, false)
                    }
                    _ => {
                        i += 1;
                        continue;
                    }
                };
                // `==`, `<=`, `>=`, `!=` are comparisons, not stores.
                if !is_plain && !matches!(self.toks[lhs].kind, TokenKind::Ident(_)) {
                    i += 1;
                    continue;
                }
                if is_plain
                    && self
                        .toks
                        .get(i.wrapping_sub(2))
                        .is_some_and(|t| t.is_punct('<') || t.is_punct('>') || t.is_punct('!'))
                {
                    i += 1;
                    continue;
                }
                if let Some(&bidx) = self.ud.resolved.get(&lhs) {
                    if self.tainted[bidx].is_none() {
                        let mut k = i + 1;
                        let mut depth = 0i32;
                        while k < body.end {
                            match self.toks[k].kind {
                                TokenKind::Punct('(')
                                | TokenKind::Punct('[')
                                | TokenKind::Punct('{') => depth += 1,
                                TokenKind::Punct(')')
                                | TokenKind::Punct(']')
                                | TokenKind::Punct('}') => {
                                    if depth == 0 {
                                        break;
                                    }
                                    depth -= 1;
                                }
                                TokenKind::Punct(';') if depth == 0 => break,
                                _ => {}
                            }
                            k += 1;
                        }
                        if let Some(line) = self.range_taint(i + 1..k) {
                            self.tainted[bidx] = Some(line);
                            changed = true;
                        }
                    }
                }
            }
            i += 1;
        }
        changed
    }

    /// The source line of the first taint inside `range`, if any: a
    /// direct iteration source or a use of a tainted binding.
    fn range_taint(&self, range: Range<usize>) -> Option<u32> {
        for i in range.clone() {
            if let Some(line) = self.source_at(i) {
                return Some(line);
            }
            if let Some(&bidx) = self.ud.resolved.get(&i) {
                if let Some(line) = self.tainted[bidx] {
                    return Some(line);
                }
            }
        }
        None
    }

    /// True when token `i` begins `<hash-name> . <iter-method> (`.
    fn source_at(&self, i: usize) -> Option<u32> {
        let name = self.toks[i].ident()?;
        if !self.hash_names.iter().any(|h| h == name) {
            return None;
        }
        if !self.toks.get(i + 1).is_some_and(|t| t.is_punct('.')) {
            return None;
        }
        let m = self.toks.get(i + 2)?.ident()?;
        if ITER_METHODS.contains(&m) && self.toks.get(i + 3).is_some_and(|t| t.is_punct('(')) {
            return Some(self.toks[i].line);
        }
        None
    }

    /// Finds every sink reached by a tainted value: the *time* (first)
    /// argument of a `schedule_*` call, and any argument of a metrics
    /// write.
    pub fn sink_hits(&self) -> Vec<TaintHit> {
        let mut out = Vec::new();
        let mut seen = BTreeSet::new();
        for i in self.f.body.clone() {
            let Some(name) = self.toks[i].ident() else {
                continue;
            };
            let is_schedule = name.starts_with("schedule_");
            let is_metrics = matches!(name, "counter_add" | "gauge_set" | "timer_record");
            if !is_schedule && !is_metrics {
                continue;
            }
            let Some(args) = balanced(self.toks, i + 1, '(', ')') else {
                continue;
            };
            // For schedule calls only the time argument is
            // order-sensitive: its first top-level argument.
            let scan_end = if is_schedule {
                let mut depth = 0usize;
                let mut end = args.end - 1;
                for k in args.start..args.end {
                    match self.toks[k].kind {
                        TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => {
                            depth += 1;
                        }
                        TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                            depth -= 1;
                        }
                        TokenKind::Punct(',') if depth == 1 => {
                            end = k;
                            break;
                        }
                        _ => {}
                    }
                }
                end
            } else {
                args.end - 1
            };
            for k in args.start + 1..scan_end {
                let hit = self
                    .ud
                    .resolved
                    .get(&k)
                    .and_then(|&b| self.tainted[b].map(|line| (line, b)))
                    .map(|(line, _)| (line, self.toks[k].ident().unwrap_or("").to_owned()))
                    .or_else(|| {
                        self.source_at(k)
                            .map(|line| (line, self.toks[k].ident().unwrap_or("").to_owned()))
                    });
                if let Some((source_line, tname)) = hit {
                    if seen.insert((i, tname.clone())) {
                        out.push(TaintHit {
                            sink_tok: i,
                            sink: name.to_owned(),
                            name: tname,
                            source_line,
                        });
                    }
                    break;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::FileIndex;
    use crate::lexer::tokenize;

    fn hits(src: &str, hash_names: &[&str]) -> Vec<(String, String, u32)> {
        let toks = tokenize(src);
        let idx = FileIndex::build(&toks);
        let names: Vec<String> = hash_names.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        for f in &idx.fns {
            let ud = UseDef::build(&toks, f);
            let tm = TaintMap::build(&toks, f, &ud, &names);
            for h in tm.sink_hits() {
                out.push((h.sink, h.name, h.source_line));
            }
        }
        out
    }

    #[test]
    fn direct_source_into_schedule_time_is_flagged() {
        let src = "\
fn f(en: &mut E) {
    for (id, t) in table.iter() {
        en.schedule_at(t, tick);
    }
}
";
        let got = hits(src, &["table"]);
        assert_eq!(got, vec![("schedule_at".into(), "t".into(), 2)]);
    }

    #[test]
    fn taint_propagates_through_lets_and_arithmetic() {
        let src = "\
fn f(en: &mut E) {
    let mut total = 0u64;
    for v in weights.values() {
        total += v;
    }
    let delay = base + total;
    en.schedule_in(delay, tick);
    counter_add(\"w.total\", total);
}
";
        let got = hits(src, &["weights"]);
        assert_eq!(got.len(), 2, "{got:?}");
        assert_eq!(got[0], ("schedule_in".into(), "delay".into(), 3));
        assert_eq!(got[1], ("counter_add".into(), "total".into(), 3));
    }

    #[test]
    fn payload_arguments_are_not_time_sinks() {
        // Taint in the second (payload) argument of a schedule call is
        // not a time hazard.
        let src = "\
fn f(en: &mut E) {
    let n = table.iter().count();
    en.schedule_in(FIXED, n);
}
";
        assert!(hits(src, &["table"]).is_empty());
    }

    #[test]
    fn ordered_sources_stay_clean() {
        let src = "\
fn f(en: &mut E) {
    for (id, t) in ordered.iter() {
        en.schedule_at(t, tick);
    }
}
";
        assert!(
            hits(src, &["table"]).is_empty(),
            "ordered is not a hash name"
        );
    }

    #[test]
    fn reassignment_from_source_taints() {
        let src = "\
fn f(en: &mut E) {
    let mut d = 0;
    d = bag.keys().next().copied().unwrap_or(0);
    en.schedule_in(d, tick);
}
";
        assert_eq!(hits(src, &["bag"]).len(), 1);
    }
}
