//! `audit.toml` allowlist parsing and matching.
//!
//! The allowlist records *audited exceptions*: places where a flagged
//! construct is deliberate and its safety argument has been written
//! down. The format is a minimal TOML subset parsed by hand (the
//! workspace has no TOML dependency):
//!
//! ```toml
//! [[allow]]
//! rule = "wall-clock"
//! path = "crates/bench/src"
//! reason = "benchmark harness measures real elapsed time by design"
//! ```
//!
//! `rule` must name a rule from the catalogue (or `"*"` for any),
//! `path` is a workspace-relative prefix, and `reason` is mandatory —
//! an allowlist entry without a written justification defeats the
//! point of having one.
//!
//! A `[hot_paths]` section lists the files whose per-entity lookups
//! are measured hot paths; the `hot-btree-lookup` rule flags ordered
//! containers only in these files:
//!
//! ```toml
//! [hot_paths]
//! path = "crates/vnet/src/overlay.rs"
//! path = "crates/sched/src/wfq.rs"
//! ```

use crate::rules::{Finding, RULES};

/// One `[[allow]]` entry.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    /// Rule name this entry suppresses, or `"*"` for every rule.
    pub rule: String,
    /// Workspace-relative path prefix the suppression applies to.
    pub path: String,
    /// Written justification (mandatory).
    pub reason: String,
    /// 1-based line of the `[[allow]]` header, for diagnostics.
    pub line: u32,
}

/// The parsed allowlist.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    /// All entries, in file order.
    pub entries: Vec<AllowEntry>,
    /// Workspace-relative path prefixes from `[hot_paths]`: files
    /// whose state the `hot-btree-lookup` rule polices.
    pub hot_paths: Vec<String>,
}

/// A fatal problem in the allowlist file itself.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line the problem was detected on.
    pub line: u32,
    /// What is wrong.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "audit.toml:{}: {}", self.line, self.message)
    }
}

impl Allowlist {
    /// Parses the `audit.toml` text. Unknown keys, missing `reason`s,
    /// and rule names outside the catalogue are hard errors: a typo in
    /// a suppression must not silently re-enable (or widen) it.
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        let mut entries: Vec<AllowEntry> = Vec::new();
        let mut hot_paths: Vec<String> = Vec::new();
        let mut current: Option<AllowEntry> = None;
        let mut in_hot_paths = false;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx as u32 + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(done) = current.take() {
                    validate(&done)?;
                    entries.push(done);
                }
                in_hot_paths = false;
                current = Some(AllowEntry {
                    rule: String::new(),
                    path: String::new(),
                    reason: String::new(),
                    line: lineno,
                });
                continue;
            }
            if line == "[hot_paths]" {
                if let Some(done) = current.take() {
                    validate(&done)?;
                    entries.push(done);
                }
                in_hot_paths = true;
                continue;
            }
            let Some((key, value)) = parse_kv(line) else {
                return Err(ConfigError {
                    line: lineno,
                    message: format!(
                        "expected `[[allow]]`, `[hot_paths]` or `key = \"value\"`, got `{line}`"
                    ),
                });
            };
            if in_hot_paths {
                if key != "path" {
                    return Err(ConfigError {
                        line: lineno,
                        message: format!("unknown key `{key}` in [hot_paths] (expected path)"),
                    });
                }
                if value.is_empty() {
                    return Err(ConfigError {
                        line: lineno,
                        message: "[hot_paths] entry has an empty path".to_owned(),
                    });
                }
                hot_paths.push(value);
                continue;
            }
            let Some(entry) = current.as_mut() else {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("`{key}` outside an [[allow]] table"),
                });
            };
            match key {
                "rule" => entry.rule = value,
                "path" => entry.path = value,
                "reason" => entry.reason = value,
                other => {
                    return Err(ConfigError {
                        line: lineno,
                        message: format!("unknown key `{other}` (expected rule/path/reason)"),
                    });
                }
            }
        }
        if let Some(done) = current.take() {
            validate(&done)?;
            entries.push(done);
        }
        Ok(Allowlist { entries, hot_paths })
    }

    /// True when `path` is covered by a `[hot_paths]` prefix — i.e.
    /// the `hot-btree-lookup` rule applies to it.
    pub fn is_hot(&self, path: &str) -> bool {
        self.hot_paths.iter().any(|p| path.starts_with(p.as_str()))
    }

    /// Index of the first entry suppressing `finding` at `path`, if
    /// any. Returning the index lets the caller track which entries
    /// were actually used and warn about stale ones.
    pub fn matches(&self, path: &str, finding: &Finding) -> Option<usize> {
        self.entries.iter().position(|e| {
            (e.rule == "*" || e.rule == finding.rule) && path.starts_with(e.path.as_str())
        })
    }
}

fn validate(entry: &AllowEntry) -> Result<(), ConfigError> {
    let known = entry.rule == "*" || RULES.iter().any(|r| r.name == entry.rule);
    if !known {
        return Err(ConfigError {
            line: entry.line,
            message: format!(
                "unknown rule `{}` (run --list-rules for the catalogue)",
                entry.rule
            ),
        });
    }
    if entry.path.is_empty() {
        return Err(ConfigError {
            line: entry.line,
            message: "entry is missing `path`".to_owned(),
        });
    }
    if entry.reason.is_empty() {
        return Err(ConfigError {
            line: entry.line,
            message: "entry is missing `reason`; every suppression needs a written \
                      justification"
                .to_owned(),
        });
    }
    Ok(())
}

/// Strips a `#` comment, ignoring `#` inside double quotes.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses `key = "value"`.
fn parse_kv(line: &str) -> Option<(&str, String)> {
    let (key, rest) = line.split_once('=')?;
    let key = key.trim();
    let rest = rest.trim();
    let value = rest.strip_prefix('"')?.strip_suffix('"')?;
    if !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return None;
    }
    Some((key, value.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str) -> Finding {
        Finding {
            rule,
            line: 1,
            col: 1,
            message: String::new(),
        }
    }

    #[test]
    fn parses_entries_and_matches_by_prefix() {
        let text = "\
# audited exceptions\n\
[[allow]]\n\
rule = \"wall-clock\"\n\
path = \"crates/bench/src\"\n\
reason = \"real timers are the point of a benchmark\"\n\
\n\
[[allow]]\n\
rule = \"*\"\n\
path = \"crates/audit/tests/fixtures\"\n\
reason = \"fixtures exist to trip the rules\"\n";
        let list = Allowlist::parse(text).expect("parses");
        assert_eq!(list.entries.len(), 2);
        assert_eq!(
            list.matches("crates/bench/src/harness.rs", &finding("wall-clock")),
            Some(0)
        );
        assert_eq!(
            list.matches("crates/bench/src/harness.rs", &finding("unwrap-lib")),
            None
        );
        assert_eq!(
            list.matches("crates/audit/tests/fixtures/bad.rs", &finding("static-mut")),
            Some(1)
        );
    }

    #[test]
    fn hot_paths_section_parses_and_matches_by_prefix() {
        let text = "\
[hot_paths]\n\
path = \"crates/vnet/src/overlay.rs\"\n\
path = \"crates/sched/src\"\n\
\n\
[[allow]]\n\
rule = \"hot-btree-lookup\"\n\
path = \"crates/sched/src/edf.rs\"\n\
reason = \"deadline order is semantic\"\n";
        let list = Allowlist::parse(text).expect("parses");
        assert_eq!(list.hot_paths.len(), 2);
        assert!(list.is_hot("crates/vnet/src/overlay.rs"));
        assert!(list.is_hot("crates/sched/src/wfq.rs"));
        assert!(!list.is_hot("crates/vnet/src/dhcp.rs"));
        assert_eq!(
            list.entries.len(),
            1,
            "allow table after [hot_paths] parses"
        );
    }

    #[test]
    fn hot_paths_rejects_foreign_keys_and_empty_paths() {
        let err = Allowlist::parse("[hot_paths]\nrule = \"x\"\n").unwrap_err();
        assert!(err.message.contains("unknown key"), "{err}");
        let err = Allowlist::parse("[hot_paths]\npath = \"\"\n").unwrap_err();
        assert!(err.message.contains("empty path"), "{err}");
    }

    #[test]
    fn missing_reason_is_fatal() {
        let text = "[[allow]]\nrule = \"wall-clock\"\npath = \"crates/bench\"\n";
        let err = Allowlist::parse(text).unwrap_err();
        assert!(err.message.contains("reason"), "{err}");
    }

    #[test]
    fn unknown_rule_is_fatal() {
        let text = "[[allow]]\nrule = \"wall-clocks\"\npath = \"x\"\nreason = \"typo\"\n";
        let err = Allowlist::parse(text).unwrap_err();
        assert!(err.message.contains("unknown rule"), "{err}");
    }

    #[test]
    fn keys_outside_a_table_are_fatal() {
        let err = Allowlist::parse("rule = \"wall-clock\"\n").unwrap_err();
        assert!(err.message.contains("outside"), "{err}");
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "\n# nothing but comments\n   # indented\n";
        let list = Allowlist::parse(text).expect("parses");
        assert!(list.entries.is_empty());
    }
}
