//! `audit.toml` allowlist parsing and matching.
//!
//! The allowlist records *audited exceptions*: places where a flagged
//! construct is deliberate and its safety argument has been written
//! down. The format is a minimal TOML subset parsed by hand (the
//! workspace has no TOML dependency):
//!
//! ```toml
//! [[allow]]
//! rule = "wall-clock"
//! path = "crates/bench/src"
//! reason = "benchmark harness measures real elapsed time by design"
//! ```
//!
//! `rule` must name a rule from the catalogue (or `"*"` for any),
//! `path` is a workspace-relative prefix, and `reason` is mandatory —
//! an allowlist entry without a written justification defeats the
//! point of having one.
//!
//! A `[hot_paths]` section lists the files whose per-entity lookups
//! are measured hot paths; the `hot-btree-lookup` rule flags ordered
//! containers only in these files:
//!
//! ```toml
//! [hot_paths]
//! path = "crates/vnet/src/overlay.rs"
//! path = "crates/sched/src/wfq.rs"
//! ```

use crate::rules::{Finding, RULES};

/// Identifies the baseline file format; bumped on breaking changes.
pub const BASELINE_SCHEMA: &str = "gridvm-audit-baseline/v1";

/// One `[[allow]]` entry.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    /// Rule name this entry suppresses, or `"*"` for every rule.
    pub rule: String,
    /// Workspace-relative path prefix the suppression applies to.
    pub path: String,
    /// Written justification (mandatory).
    pub reason: String,
    /// 1-based line of the `[[allow]]` header, for diagnostics.
    pub line: u32,
}

/// The parsed allowlist.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    /// All entries, in file order.
    pub entries: Vec<AllowEntry>,
    /// Workspace-relative path prefixes from `[hot_paths]`: files
    /// whose state the `hot-btree-lookup` rule polices.
    pub hot_paths: Vec<String>,
}

/// A fatal problem in the allowlist file itself.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line the problem was detected on.
    pub line: u32,
    /// What is wrong.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "audit.toml:{}: {}", self.line, self.message)
    }
}

impl Allowlist {
    /// Parses the `audit.toml` text. Unknown keys, missing `reason`s,
    /// and rule names outside the catalogue are hard errors: a typo in
    /// a suppression must not silently re-enable (or widen) it.
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        let mut entries: Vec<AllowEntry> = Vec::new();
        let mut hot_paths: Vec<String> = Vec::new();
        let mut current: Option<AllowEntry> = None;
        let mut in_hot_paths = false;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx as u32 + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(done) = current.take() {
                    validate(&done)?;
                    entries.push(done);
                }
                in_hot_paths = false;
                current = Some(AllowEntry {
                    rule: String::new(),
                    path: String::new(),
                    reason: String::new(),
                    line: lineno,
                });
                continue;
            }
            if line == "[hot_paths]" {
                if let Some(done) = current.take() {
                    validate(&done)?;
                    entries.push(done);
                }
                in_hot_paths = true;
                continue;
            }
            let Some((key, value)) = parse_kv(line) else {
                return Err(ConfigError {
                    line: lineno,
                    message: format!(
                        "expected `[[allow]]`, `[hot_paths]` or `key = \"value\"`, got `{line}`"
                    ),
                });
            };
            if in_hot_paths {
                if key != "path" {
                    return Err(ConfigError {
                        line: lineno,
                        message: format!("unknown key `{key}` in [hot_paths] (expected path)"),
                    });
                }
                if value.is_empty() {
                    return Err(ConfigError {
                        line: lineno,
                        message: "[hot_paths] entry has an empty path".to_owned(),
                    });
                }
                hot_paths.push(value);
                continue;
            }
            let Some(entry) = current.as_mut() else {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("`{key}` outside an [[allow]] table"),
                });
            };
            match key {
                "rule" => entry.rule = value,
                "path" => entry.path = value,
                "reason" => entry.reason = value,
                other => {
                    return Err(ConfigError {
                        line: lineno,
                        message: format!("unknown key `{other}` (expected rule/path/reason)"),
                    });
                }
            }
        }
        if let Some(done) = current.take() {
            validate(&done)?;
            entries.push(done);
        }
        Ok(Allowlist { entries, hot_paths })
    }

    /// True when `path` is covered by a `[hot_paths]` prefix — i.e.
    /// the `hot-btree-lookup` rule applies to it.
    pub fn is_hot(&self, path: &str) -> bool {
        self.hot_paths.iter().any(|p| path.starts_with(p.as_str()))
    }

    /// Index of the first entry suppressing `finding` at `path`, if
    /// any. Returning the index lets the caller track which entries
    /// were actually used and warn about stale ones.
    pub fn matches(&self, path: &str, finding: &Finding) -> Option<usize> {
        self.entries.iter().position(|e| {
            (e.rule == "*" || e.rule == finding.rule) && path.starts_with(e.path.as_str())
        })
    }
}

fn validate(entry: &AllowEntry) -> Result<(), ConfigError> {
    let known = entry.rule == "*" || RULES.iter().any(|r| r.name == entry.rule);
    if !known {
        return Err(ConfigError {
            line: entry.line,
            message: format!(
                "unknown rule `{}` (run --list-rules for the catalogue)",
                entry.rule
            ),
        });
    }
    if entry.path.is_empty() {
        return Err(ConfigError {
            line: entry.line,
            message: "entry is missing `path`".to_owned(),
        });
    }
    if entry.reason.is_empty() {
        return Err(ConfigError {
            line: entry.line,
            message: "entry is missing `reason`; every suppression needs a written \
                      justification"
                .to_owned(),
        });
    }
    Ok(())
}

/// One `(path, rule)` budget in the findings baseline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Workspace-relative file path the findings live in.
    pub path: String,
    /// Rule name.
    pub rule: String,
    /// How many findings of `rule` in `path` the ratchet tolerates.
    pub count: usize,
}

/// The findings ratchet: known findings that existed when a rule
/// landed, committed as `audit_baseline.json`. Deny mode fails only on
/// findings *beyond* these budgets, so new rules can ship with their
/// pre-existing findings triaged over time instead of blocking the
/// tree; entries whose findings have been fixed are reported so the
/// baseline only ever shrinks.
#[derive(Clone, Debug, Default)]
pub struct Baseline {
    /// Why this baseline is allowed to exist (mandatory, even — and
    /// especially — when `entries` is empty).
    pub note: String,
    /// Budgets, as committed.
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// Parses the baseline JSON. Schema mismatches, unknown rule names
    /// and a missing `note` are hard errors, for the same reason they
    /// are in `audit.toml`: a typo must not silently widen the ratchet.
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        use json::ObjectExt as _;
        let v = json::parse(text)?;
        let obj = v.as_object("top level")?;
        let schema = obj.get_str("schema")?;
        if schema != BASELINE_SCHEMA {
            return Err(ConfigError {
                line: 1,
                message: format!("baseline schema is `{schema}`, expected `{BASELINE_SCHEMA}`"),
            });
        }
        let note = obj.get_str("note")?.to_owned();
        if note.is_empty() {
            return Err(ConfigError {
                line: 1,
                message: "baseline `note` is empty; write down why the ratchet exists".to_owned(),
            });
        }
        let mut entries = Vec::new();
        for item in obj.get_array("findings")? {
            let e = item.as_object("findings entry")?;
            let rule = e.get_str("rule")?.to_owned();
            if !RULES.iter().any(|r| r.name == rule) {
                return Err(ConfigError {
                    line: 1,
                    message: format!("baseline names unknown rule `{rule}`"),
                });
            }
            let path = e.get_str("path")?.to_owned();
            let count = e.get_count("count")?;
            if path.is_empty() || count == 0 {
                return Err(ConfigError {
                    line: 1,
                    message: "baseline entry needs a non-empty path and count >= 1".to_owned(),
                });
            }
            entries.push(BaselineEntry { path, rule, count });
        }
        Ok(Baseline { note, entries })
    }

    /// Serializes a baseline for `--write-baseline`, sorted so the
    /// committed file is diff-stable.
    pub fn render(note: &str, entries: &[BaselineEntry]) -> String {
        let mut sorted = entries.to_vec();
        sorted.sort_by(|a, b| (&a.path, &a.rule).cmp(&(&b.path, &b.rule)));
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{BASELINE_SCHEMA}\",\n"));
        out.push_str(&format!("  \"note\": {},\n", json::escape(note)));
        out.push_str("  \"findings\": [");
        for (i, e) in sorted.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"path\": {}, \"rule\": {}, \"count\": {}}}",
                json::escape(&e.path),
                json::escape(&e.rule),
                e.count
            ));
        }
        if !sorted.is_empty() {
            out.push('\n');
            out.push_str("  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// A hand-rolled JSON subset — objects, arrays, strings, unsigned
/// integers, `true`/`false`/`null` — enough for the baseline file and
/// report output without a serde dependency.
mod json {
    use super::ConfigError;
    use std::collections::BTreeMap;

    /// One parsed JSON value.
    pub enum Value {
        /// An object; keys sorted, duplicates rejected at parse time.
        Object(BTreeMap<String, Value>),
        /// An array.
        Array(Vec<Value>),
        /// A string.
        Str(String),
        /// An unsigned integer (the only number shape the baseline
        /// uses).
        Num(u64),
        /// `true` / `false` / `null`, folded (the baseline never reads
        /// them back).
        Atom,
    }

    impl Value {
        pub fn as_object(&self, what: &str) -> Result<&BTreeMap<String, Value>, ConfigError> {
            match self {
                Value::Object(m) => Ok(m),
                _ => Err(err(format!("{what} must be a JSON object"))),
            }
        }
    }

    /// Typed field access on parsed objects.
    pub trait ObjectExt {
        fn get_str(&self, key: &str) -> Result<&str, ConfigError>;
        fn get_array(&self, key: &str) -> Result<&[Value], ConfigError>;
        fn get_count(&self, key: &str) -> Result<usize, ConfigError>;
    }

    impl ObjectExt for BTreeMap<String, Value> {
        fn get_str(&self, key: &str) -> Result<&str, ConfigError> {
            match self.get(key) {
                Some(Value::Str(s)) => Ok(s),
                _ => Err(err(format!("missing or non-string `{key}`"))),
            }
        }

        fn get_array(&self, key: &str) -> Result<&[Value], ConfigError> {
            match self.get(key) {
                Some(Value::Array(a)) => Ok(a),
                _ => Err(err(format!("missing or non-array `{key}`"))),
            }
        }

        fn get_count(&self, key: &str) -> Result<usize, ConfigError> {
            match self.get(key) {
                Some(Value::Num(n)) => Ok(*n as usize),
                _ => Err(err(format!("missing or non-integer `{key}`"))),
            }
        }
    }

    fn err(message: String) -> ConfigError {
        ConfigError { line: 1, message }
    }

    /// Escapes `s` as a JSON string literal (quotes included).
    pub fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    /// Parses one JSON document.
    pub fn parse(text: &str) -> Result<Value, ConfigError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(at(bytes, pos, "trailing content after JSON value"));
        }
        Ok(v)
    }

    fn at(bytes: &[u8], pos: usize, message: &str) -> ConfigError {
        let line = bytes[..pos.min(bytes.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count() as u32
            + 1;
        ConfigError {
            line,
            message: message.to_owned(),
        }
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while bytes
            .get(*pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
        {
            *pos += 1;
        }
    }

    fn value(bytes: &[u8], pos: &mut usize) -> Result<Value, ConfigError> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => {
                *pos += 1;
                let mut map = BTreeMap::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Object(map));
                }
                loop {
                    skip_ws(bytes, pos);
                    let key = match value(bytes, pos)? {
                        Value::Str(s) => s,
                        _ => return Err(at(bytes, *pos, "object key must be a string")),
                    };
                    skip_ws(bytes, pos);
                    if bytes.get(*pos) != Some(&b':') {
                        return Err(at(bytes, *pos, "expected `:` after object key"));
                    }
                    *pos += 1;
                    let v = value(bytes, pos)?;
                    if map.insert(key, v).is_some() {
                        return Err(at(bytes, *pos, "duplicate object key"));
                    }
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Object(map));
                        }
                        _ => return Err(at(bytes, *pos, "expected `,` or `}` in object")),
                    }
                }
            }
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(value(bytes, pos)?);
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(at(bytes, *pos, "expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'"') => {
                *pos += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(*pos) {
                        Some(b'"') => {
                            *pos += 1;
                            return Ok(Value::Str(s));
                        }
                        Some(b'\\') => {
                            *pos += 1;
                            match bytes.get(*pos) {
                                Some(b'n') => s.push('\n'),
                                Some(b't') => s.push('\t'),
                                Some(b'r') => s.push('\r'),
                                Some(b'"') => s.push('"'),
                                Some(b'\\') => s.push('\\'),
                                Some(b'/') => s.push('/'),
                                Some(b'u') => {
                                    let hex = bytes
                                        .get(*pos + 1..*pos + 5)
                                        .and_then(|h| std::str::from_utf8(h).ok())
                                        .and_then(|h| u32::from_str_radix(h, 16).ok())
                                        .and_then(char::from_u32)
                                        .ok_or_else(|| {
                                            at(bytes, *pos, "bad \\u escape in string")
                                        })?;
                                    s.push(hex);
                                    *pos += 4;
                                }
                                _ => return Err(at(bytes, *pos, "bad escape in string")),
                            }
                            *pos += 1;
                        }
                        Some(&b) if b < 0x80 => {
                            s.push(b as char);
                            *pos += 1;
                        }
                        Some(_) => {
                            // Multi-byte UTF-8: copy the whole char.
                            let rest = std::str::from_utf8(&bytes[*pos..])
                                .map_err(|_| at(bytes, *pos, "invalid UTF-8 in string"))?;
                            let c = rest.chars().next().expect("non-empty by construction");
                            s.push(c);
                            *pos += c.len_utf8();
                        }
                        None => return Err(at(bytes, *pos, "unterminated string")),
                    }
                }
            }
            Some(b) if b.is_ascii_digit() => {
                let start = *pos;
                while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
                    *pos += 1;
                }
                let n = std::str::from_utf8(&bytes[start..*pos])
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| at(bytes, start, "bad number"))?;
                Ok(Value::Num(n))
            }
            Some(_) => {
                for kw in ["true", "false", "null"] {
                    if bytes[*pos..].starts_with(kw.as_bytes()) {
                        *pos += kw.len();
                        return Ok(Value::Atom);
                    }
                }
                Err(at(bytes, *pos, "unexpected character in JSON"))
            }
            None => Err(at(bytes, *pos, "unexpected end of JSON")),
        }
    }
}

pub use json::escape as json_escape;

/// Strips a `#` comment, ignoring `#` inside double quotes.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses `key = "value"`.
fn parse_kv(line: &str) -> Option<(&str, String)> {
    let (key, rest) = line.split_once('=')?;
    let key = key.trim();
    let rest = rest.trim();
    let value = rest.strip_prefix('"')?.strip_suffix('"')?;
    if !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return None;
    }
    Some((key, value.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str) -> Finding {
        Finding {
            rule,
            line: 1,
            col: 1,
            message: String::new(),
        }
    }

    #[test]
    fn parses_entries_and_matches_by_prefix() {
        let text = "\
# audited exceptions\n\
[[allow]]\n\
rule = \"wall-clock\"\n\
path = \"crates/bench/src\"\n\
reason = \"real timers are the point of a benchmark\"\n\
\n\
[[allow]]\n\
rule = \"*\"\n\
path = \"crates/audit/tests/fixtures\"\n\
reason = \"fixtures exist to trip the rules\"\n";
        let list = Allowlist::parse(text).expect("parses");
        assert_eq!(list.entries.len(), 2);
        assert_eq!(
            list.matches("crates/bench/src/harness.rs", &finding("wall-clock")),
            Some(0)
        );
        assert_eq!(
            list.matches("crates/bench/src/harness.rs", &finding("unwrap-lib")),
            None
        );
        assert_eq!(
            list.matches("crates/audit/tests/fixtures/bad.rs", &finding("static-mut")),
            Some(1)
        );
    }

    #[test]
    fn hot_paths_section_parses_and_matches_by_prefix() {
        let text = "\
[hot_paths]\n\
path = \"crates/vnet/src/overlay.rs\"\n\
path = \"crates/sched/src\"\n\
\n\
[[allow]]\n\
rule = \"hot-btree-lookup\"\n\
path = \"crates/sched/src/edf.rs\"\n\
reason = \"deadline order is semantic\"\n";
        let list = Allowlist::parse(text).expect("parses");
        assert_eq!(list.hot_paths.len(), 2);
        assert!(list.is_hot("crates/vnet/src/overlay.rs"));
        assert!(list.is_hot("crates/sched/src/wfq.rs"));
        assert!(!list.is_hot("crates/vnet/src/dhcp.rs"));
        assert_eq!(
            list.entries.len(),
            1,
            "allow table after [hot_paths] parses"
        );
    }

    #[test]
    fn hot_paths_rejects_foreign_keys_and_empty_paths() {
        let err = Allowlist::parse("[hot_paths]\nrule = \"x\"\n").unwrap_err();
        assert!(err.message.contains("unknown key"), "{err}");
        let err = Allowlist::parse("[hot_paths]\npath = \"\"\n").unwrap_err();
        assert!(err.message.contains("empty path"), "{err}");
    }

    #[test]
    fn missing_reason_is_fatal() {
        let text = "[[allow]]\nrule = \"wall-clock\"\npath = \"crates/bench\"\n";
        let err = Allowlist::parse(text).unwrap_err();
        assert!(err.message.contains("reason"), "{err}");
    }

    #[test]
    fn unknown_rule_is_fatal() {
        let text = "[[allow]]\nrule = \"wall-clocks\"\npath = \"x\"\nreason = \"typo\"\n";
        let err = Allowlist::parse(text).unwrap_err();
        assert!(err.message.contains("unknown rule"), "{err}");
    }

    #[test]
    fn keys_outside_a_table_are_fatal() {
        let err = Allowlist::parse("rule = \"wall-clock\"\n").unwrap_err();
        assert!(err.message.contains("outside"), "{err}");
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "\n# nothing but comments\n   # indented\n";
        let list = Allowlist::parse(text).expect("parses");
        assert!(list.entries.is_empty());
    }

    #[test]
    fn baseline_round_trips_through_render_and_parse() {
        let entries = vec![
            BaselineEntry {
                path: "crates/vnet/src/overlay.rs".into(),
                rule: "alloc-in-hot".into(),
                count: 3,
            },
            BaselineEntry {
                path: "crates/core/src/multisite.rs".into(),
                rule: "iter-order-taint".into(),
                count: 1,
            },
        ];
        let text = Baseline::render("triaged at rule introduction", &entries);
        let base = Baseline::parse(&text).expect("round-trips");
        assert_eq!(base.note, "triaged at rule introduction");
        // Render sorts by (path, rule).
        assert_eq!(base.entries[0].path, "crates/core/src/multisite.rs");
        assert_eq!(base.entries[1].count, 3);
    }

    #[test]
    fn baseline_rejects_bad_schema_unknown_rule_and_empty_note() {
        let bad_schema = r#"{"schema": "nope/v9", "note": "x", "findings": []}"#;
        assert!(Baseline::parse(bad_schema).is_err());
        let bad_rule = format!(
            r#"{{"schema": "{BASELINE_SCHEMA}", "note": "x",
                "findings": [{{"path": "a.rs", "rule": "no-such-rule", "count": 1}}]}}"#
        );
        let err = Baseline::parse(&bad_rule).unwrap_err();
        assert!(err.message.contains("unknown rule"), "{err}");
        let empty_note =
            format!(r#"{{"schema": "{BASELINE_SCHEMA}", "note": "", "findings": []}}"#);
        assert!(Baseline::parse(&empty_note).is_err());
    }

    #[test]
    fn baseline_rejects_malformed_json() {
        assert!(Baseline::parse("{").is_err());
        assert!(Baseline::parse("").is_err());
        assert!(Baseline::parse(r#"{"schema": }"#).is_err());
    }
}
