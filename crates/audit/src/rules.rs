//! The determinism rule catalogue and the scanner that applies it.
//!
//! Every rule is a short token-sequence pattern over the output of
//! [`crate::lexer`], evaluated with file context (which crate the file
//! belongs to, whether it is library / binary / test / bench code, and
//! which token ranges sit inside `#[cfg(test)]` modules). The rules
//! encode the workspace's determinism contract (DESIGN.md §8):
//!
//! | rule | hazard |
//! |------|--------|
//! | `boxed-event`     | `Box::new` handed to a `schedule_*` call outside simcore: forces the boxing fallback where the inline `schedule_fn_*`/`schedule_arg_*` variants are allocation-free |
//! | `hash-container`  | `HashMap`/`HashSet` state in sim-state crates: iteration and (historically) eviction order depend on the hasher, not the operation sequence |
//! | `wall-clock`      | `Instant`/`SystemTime`: real time leaks into simulated results |
//! | `unseeded-rand`   | `thread_rng`/`OsRng`/`RandomState`/...: randomness outside the seeded [`SimRng`](https://docs.rs) stream |
//! | `static-mut`      | `static mut`: cross-replication shared mutable state |
//! | `float-accum`     | float reduction (`sum`/`fold`/`+=`) over an unordered hash iteration: result depends on visit order |
//! | `unwrap-lib`      | `.unwrap()` in library code: panics without an invariant message |
//! | `hot-btree-lookup`| `BTreeMap`/`BTreeSet` in a file listed under `[hot_paths]` in `audit.toml`: O(log n) lookups on a measured hot path |
//! | `sync-primitive`  | `Mutex`/`RwLock`/`Atomic*` in sim-state library code outside the sanctioned `simcore::shard` synchronizer: ad-hoc cross-thread coordination invites schedule-dependent results |

use crate::analysis::{balanced, find_closures, receiver_chain, FileIndex, SymbolTable, UseDef};
use crate::lexer::{tokenize, Token, TokenKind};
use crate::taint::TaintMap;

/// Path suffix of the one file owning the mailbox protocol's state;
/// `shard-state-escape` resolves site-owned fields against it through
/// the workspace symbol table.
pub const SHARD_FILE: &str = "crates/simcore/src/shard.rs";

/// Crates whose *state* feeds simulation results. A hash container
/// here is a latent nondeterminism bomb even when today's code never
/// iterates it: the next refactor can start iterating without any
/// reviewer noticing.
pub const SIM_STATE_CRATES: &[&str] = &[
    "simcore",
    "sched",
    "vnet",
    "storage",
    "host",
    "vfs",
    "core",
    "gridmw",
    "vmm",
    "workloads",
    "hostload",
];

/// Where a source file sits in the workspace, which decides which
/// rules apply to it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SourceKind {
    /// Library code (`src/` excluding binary targets).
    Lib,
    /// A binary target (`src/main.rs`, `src/bin/*`).
    Bin,
    /// Integration tests (`tests/`).
    Test,
    /// Benchmarks (`benches/`).
    Bench,
    /// Examples (`examples/`).
    Example,
}

/// The scanning context for one file.
#[derive(Clone, Debug)]
pub struct FileContext {
    /// Short crate name (`"sched"`, `"bench"`, `"gridvm"` for the
    /// facade crate).
    pub crate_name: String,
    /// What kind of target the file belongs to.
    pub kind: SourceKind,
    /// True when the file is listed under `[hot_paths]` in
    /// `audit.toml`: its per-entity lookups are measured hot paths,
    /// so ordered containers need an audited reason.
    pub hot: bool,
    /// True for the one file allowed to hold locks and atomics:
    /// `crates/simcore/src/shard.rs`, the conservative synchronizer
    /// that *is* the sanctioned cross-thread coordination layer.
    pub sync_sanctioned: bool,
}

impl FileContext {
    /// Derives the context from a workspace-relative path such as
    /// `crates/sched/src/wfq.rs`.
    pub fn from_path(rel_path: &str) -> Self {
        let parts: Vec<&str> = rel_path.split('/').collect();
        let crate_name = if parts.first() == Some(&"crates") && parts.len() > 1 {
            parts[1].to_owned()
        } else {
            "gridvm".to_owned()
        };
        let kind = if parts.contains(&"tests") {
            SourceKind::Test
        } else if parts.contains(&"benches") {
            SourceKind::Bench
        } else if parts.contains(&"examples") {
            SourceKind::Example
        } else if parts.contains(&"bin") || parts.last() == Some(&"main.rs") {
            SourceKind::Bin
        } else {
            SourceKind::Lib
        };
        FileContext {
            crate_name,
            kind,
            hot: false,
            sync_sanctioned: rel_path == "crates/simcore/src/shard.rs",
        }
    }

    fn is_sim_state(&self) -> bool {
        SIM_STATE_CRATES.contains(&self.crate_name.as_str())
    }
}

/// One diagnostic produced by the scanner.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired (e.g. `"hash-container"`).
    pub rule: &'static str,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

/// A rule's catalogue entry, for `--list-rules` and DESIGN.md.
pub struct RuleInfo {
    /// Rule identifier as it appears in diagnostics and `audit.toml`.
    pub name: &'static str,
    /// One-line description of the hazard the rule detects.
    pub summary: &'static str,
}

/// The rule catalogue, in diagnostic-name order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "alloc-in-hot",
        summary: "heap allocation (Box::new/Vec::new/vec!/format!/to_string/to_owned/heap \
                  clone) inside a non-constructor function of a [hot_paths] file: steady \
                  state on measured hot paths is allocation-free (DESIGN.md \u{a7}10/\u{a7}11); \
                  hoist the allocation to setup or record an audited exception",
    },
    RuleInfo {
        name: "boxed-event",
        summary: "Box::new inside a schedule_* call outside simcore: the engine boxes \
                  oversized captures itself; use schedule_fn_*/schedule_arg_* (or plain \
                  closures) for allocation-free dispatch",
    },
    RuleInfo {
        name: "float-accum",
        summary: "float reduction (sum/fold/product or `+=`) over HashMap/HashSet iteration: \
                  result depends on hasher-determined visit order",
    },
    RuleInfo {
        name: "hash-container",
        summary: "HashMap/HashSet state in a sim-state crate: iteration order is a latent \
                  nondeterminism hazard; use BTreeMap/BTreeSet or an index arena",
    },
    RuleInfo {
        name: "hot-btree-lookup",
        summary: "BTreeMap/BTreeSet in a file listed under [hot_paths] in audit.toml: \
                  O(log n) lookups on a measured hot path; use slot::SlotMap/DenseMap, or \
                  allowlist with the reason order is semantic there",
    },
    RuleInfo {
        name: "iter-order-taint",
        summary: "a value derived from unordered-container iteration flows into a \
                  schedule_* time argument or a metrics write (tracked through lets, \
                  loop variables and reassignments): event order or merged statistics \
                  become hasher-dependent; iterate an ordered container or sort first",
    },
    RuleInfo {
        name: "lock-order",
        summary: "nested lock acquisitions in inconsistent order (A then B here, B then \
                  A elsewhere) or two locks from the same indexed table held at once: a \
                  static deadlock hazard; acquire in one global order or narrow the \
                  first guard's scope",
    },
    RuleInfo {
        name: "malformed-suppression",
        summary: "an inline `// audit:allow(rule)` comment with no reason text or an \
                  unknown rule name: every suppression needs a written justification, \
                  exactly like audit.toml entries",
    },
    RuleInfo {
        name: "shard-state-escape",
        summary: "sim-state escaping the shard isolation contract: an event/spawn \
                  closure capturing its environment by reference, a mutable borrow \
                  smuggled into a scheduled event, or private site-owned mailbox state \
                  touched outside simcore::shard — each makes cross-site interaction \
                  bypass the deterministic mailbox drain",
    },
    RuleInfo {
        name: "static-mut",
        summary: "`static mut` global: shared mutable state breaks replication isolation \
                  and is unsound under threads",
    },
    RuleInfo {
        name: "sync-primitive",
        summary: "Mutex/RwLock/Atomic* in sim-state library code outside the sanctioned \
                  simcore::shard synchronizer: ad-hoc locking makes results depend on the \
                  OS schedule; route coordination through shard/replication or allowlist \
                  with an audited reason",
    },
    RuleInfo {
        name: "unseeded-rand",
        summary: "randomness that bypasses the seeded SimRng stream (thread_rng, OsRng, \
                  RandomState, from_entropy, getrandom)",
    },
    RuleInfo {
        name: "unwrap-lib",
        summary: ".unwrap() in library (non-test) code: panic without an invariant message; \
                  use typed errors or expect(\"<invariant>\")",
    },
    RuleInfo {
        name: "wall-clock",
        summary: "Instant/SystemTime outside the bench harness: real time leaking into \
                  simulated results",
    },
];

const UNSEEDED_IDENTS: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "OsRng",
    "RandomState",
    "getrandom",
];

/// Scans one file's source text and returns every rule violation.
/// Token-pattern rules only; [`scan_with`] adds the semantic pass.
pub fn scan(src: &str, ctx: &FileContext) -> Vec<Finding> {
    scan_with(src, ctx, None)
}

/// Scans one file with the full rule set. `symbols` carries the
/// two-pass workspace symbol table; without it the cross-file half of
/// `shard-state-escape` (site-owned state resolution) stays silent,
/// everything intra-file still runs.
pub fn scan_with(src: &str, ctx: &FileContext, symbols: Option<&SymbolTable>) -> Vec<Finding> {
    let toks = tokenize(src);
    let test_regions = find_test_regions(&toks);
    let in_test = |i: usize| test_regions.iter().any(|r| r.contains(&i));
    let hash_names = collect_hash_names(&toks);
    let mut out = Vec::new();

    for (i, t) in toks.iter().enumerate() {
        if in_test(i) {
            continue;
        }
        if let TokenKind::Ident(name) = &t.kind {
            match name.as_str() {
                "HashMap" | "HashSet" if ctx.is_sim_state() && ctx.kind == SourceKind::Lib => {
                    out.push(Finding {
                        rule: "hash-container",
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "{name} in sim-state crate `{}`: iteration order is \
                             hasher-dependent; use BTreeMap/BTreeSet or an index arena",
                            ctx.crate_name
                        ),
                    });
                }
                "BTreeMap" | "BTreeSet" if ctx.hot => {
                    out.push(Finding {
                        rule: "hot-btree-lookup",
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "{name} in [hot_paths] file: per-entity lookups here are \
                             measured hot paths and must be O(1); migrate to \
                             slot::SlotMap/DenseMap or record an audited exception \
                             where order is semantic"
                        ),
                    });
                }
                "Instant" | "SystemTime" => {
                    out.push(Finding {
                        rule: "wall-clock",
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "{name} reads the wall clock; simulated components must use \
                             SimTime (allowlist real-time benchmark timers in audit.toml)"
                        ),
                    });
                }
                "static" if toks.get(i + 1).is_some_and(|n| n.is_ident("mut")) => {
                    out.push(Finding {
                        rule: "static-mut",
                        line: t.line,
                        col: t.col,
                        message: "static mut: shared mutable global state breaks \
                                  replication isolation; use thread-local or pass state \
                                  explicitly"
                            .to_owned(),
                    });
                }
                "Mutex" | "RwLock"
                    if ctx.is_sim_state()
                        && ctx.kind == SourceKind::Lib
                        && !ctx.sync_sanctioned =>
                {
                    out.push(Finding {
                        rule: "sync-primitive",
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "{name} in sim-state crate `{}` outside the sanctioned \
                             simcore::shard synchronizer: ad-hoc locking makes results \
                             depend on the OS schedule; route cross-thread coordination \
                             through shard/replication or record an audited exception",
                            ctx.crate_name
                        ),
                    });
                }
                "unwrap"
                    if ctx.kind == SourceKind::Lib
                        && i > 0
                        && toks[i - 1].is_punct('.')
                        && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) =>
                {
                    out.push(Finding {
                        rule: "unwrap-lib",
                        line: t.line,
                        col: t.col,
                        message: ".unwrap() in library code: convert to a typed error or \
                                  expect(\"<invariant that makes this infallible>\")"
                            .to_owned(),
                    });
                }
                _ if name.starts_with("Atomic")
                    && ctx.is_sim_state()
                    && ctx.kind == SourceKind::Lib
                    && !ctx.sync_sanctioned =>
                {
                    out.push(Finding {
                        rule: "sync-primitive",
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "{name} in sim-state crate `{}` outside the sanctioned \
                             simcore::shard synchronizer: lock-free shared state still \
                             makes results depend on the OS schedule; route cross-thread \
                             coordination through shard/replication or record an audited \
                             exception",
                            ctx.crate_name
                        ),
                    });
                }
                _ if UNSEEDED_IDENTS.contains(&name.as_str()) => {
                    out.push(Finding {
                        rule: "unseeded-rand",
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "{name} draws unseeded randomness; all stochastic behaviour \
                             must flow through the seeded SimRng streams"
                        ),
                    });
                }
                _ => {}
            }
        }
    }

    scan_float_accum(&toks, &hash_names, &in_test, &mut out);
    scan_boxed_event(&toks, ctx, &in_test, &mut out);

    // The semantic pass: item index + use-def chains feed the
    // dataflow-aware rules.
    let idx = FileIndex::build(&toks);
    scan_shard_state_escape(&toks, ctx, &idx, symbols, &in_test, &mut out);
    scan_lock_order(&toks, ctx, &idx, &in_test, &mut out);
    scan_iter_order_taint(&toks, ctx, &idx, &hash_names, &in_test, &mut out);
    scan_alloc_in_hot(&toks, ctx, &idx, &in_test, &mut out);

    out.sort_by_key(|f| (f.line, f.col, f.rule));
    out
}

/// Methods that hand a closure to deferred/parallel execution: the
/// engine's `schedule_*` family plus thread spawns.
fn defers_closure(name: &str) -> bool {
    name.starts_with("schedule_") || name == "spawn"
}

/// `shard-state-escape`: the static race detector. Three shapes:
///
/// 1. a non-`move` closure handed to `schedule_*`/`spawn` that uses a
///    name bound outside itself — a by-reference environment capture
///    escaping into deferred execution;
/// 2. a `move` closure handed to `schedule_*`/`spawn` that captures a
///    binding holding a `&mut` borrow — aliased sim-state smuggled
///    past the site boundary;
/// 3. (cross-file, via the symbol table) a field that is private
///    site-owned state of the `simcore::shard` protocol — declared in
///    [`SHARD_FILE`], nowhere else in the workspace, and not in this
///    file — accessed outside the sanctioned synchronizer: cross-site
///    interaction bypassing the mailbox API.
fn scan_shard_state_escape(
    toks: &[Token],
    ctx: &FileContext,
    idx: &FileIndex,
    symbols: Option<&SymbolTable>,
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
) {
    if !ctx.is_sim_state() || ctx.kind != SourceKind::Lib {
        return;
    }
    for f in &idx.fns {
        if f.body.is_empty() || in_test(f.body.start) {
            continue;
        }
        let ud = UseDef::build(toks, f);
        for i in f.body.clone() {
            let Some(name) = toks[i].ident() else {
                continue;
            };
            if !defers_closure(name) || !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
                continue;
            }
            let Some(args) = balanced(toks, i + 1, '(', ')') else {
                continue;
            };
            for cl in find_closures(toks, args.clone()) {
                for u in cl.body.clone() {
                    let Some(uname) = toks[u].ident() else {
                        continue;
                    };
                    if cl.params.iter().any(|p| p == uname) {
                        continue;
                    }
                    let Some(b) = ud.binding_for(u) else { continue };
                    // Bindings introduced inside the closure body are
                    // local to it, not captures.
                    if cl.body.contains(&b.def_tok) {
                        continue;
                    }
                    let t = &toks[cl.start];
                    if !cl.is_move {
                        out.push(Finding {
                            rule: "shard-state-escape",
                            line: t.line,
                            col: t.col,
                            message: format!(
                                "closure handed to `{name}` captures `{uname}` from its \
                                 environment by reference; deferred execution must not \
                                 alias live sim-state — make it `move` (or pass the \
                                 value through the event's inline argument)"
                            ),
                        });
                        break;
                    } else if b.mut_borrow {
                        out.push(Finding {
                            rule: "shard-state-escape",
                            line: t.line,
                            col: t.col,
                            message: format!(
                                "`move` closure handed to `{name}` captures `{uname}`, \
                                 a `&mut` borrow of sim-state: the event would alias \
                                 state owned by another scope when it fires; capture \
                                 owned data or route through the world argument"
                            ),
                        });
                        break;
                    }
                }
            }
        }
        // Shape 3: unambiguous private shard-protocol fields reached
        // outside the sanctioned file.
        if let Some(table) = symbols {
            if !ctx.sync_sanctioned {
                for i in f.body.clone() {
                    if !toks[i].is_punct('.') {
                        continue;
                    }
                    let Some(field) = toks.get(i + 1).and_then(Token::ident) else {
                        continue;
                    };
                    // Method calls are API, not state pokes.
                    if toks.get(i + 2).is_some_and(|t| t.is_punct('(')) {
                        continue;
                    }
                    let owners = table.field_owners(field);
                    // `pub` fields are exported API; only private
                    // fields are protocol-internal.
                    let shard_owned =
                        owners.len() == 1 && owners[0].1.ends_with(SHARD_FILE) && !owners[0].2;
                    if shard_owned && idx.declared_type(field).is_none() {
                        let t = &toks[i + 1];
                        out.push(Finding {
                            rule: "shard-state-escape",
                            line: t.line,
                            col: t.col,
                            message: format!(
                                "`.{field}` is private site-owned state of the shard \
                                 mailbox protocol (declared only in {SHARD_FILE}); \
                                 cross-site interaction must flow through the Mailbox \
                                 API (`SiteState::send` / `ShardWorld::deliver`)"
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// `lock-order`: walks each function with a scope-aware stack of live
/// lock guards. Flags (a) two locks from the same indexed table held
/// at once — order then depends on dynamic indices — and (b) pairs of
/// distinct receivers acquired in both orders within the file.
fn scan_lock_order(
    toks: &[Token],
    ctx: &FileContext,
    idx: &FileIndex,
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
) {
    if ctx.kind != SourceKind::Lib {
        return;
    }
    // (first, second) receiver pairs observed nested, with the token
    // of the second acquisition.
    let mut pairs: Vec<(String, String, usize)> = Vec::new();
    for f in &idx.fns {
        if f.body.is_empty() || in_test(f.body.start) {
            continue;
        }
        // Live guards: (receiver, scope depth at acquisition,
        // let-bound). Temporaries die at the end of their statement.
        let mut guards: Vec<(String, usize, bool)> = Vec::new();
        let mut depth = 0usize;
        let mut stmt_start = f.body.start;
        for i in f.body.clone() {
            match toks[i].kind {
                TokenKind::Punct('{') => {
                    depth += 1;
                    stmt_start = i + 1;
                }
                TokenKind::Punct('}') => {
                    guards.retain(|g| g.1 < depth);
                    depth = depth.saturating_sub(1);
                    stmt_start = i + 1;
                }
                TokenKind::Punct(';') => {
                    guards.retain(|g| g.2);
                    stmt_start = i + 1;
                }
                _ => {
                    let locks = toks[i].is_ident("lock") || toks[i].is_ident("write");
                    if locks
                        && i > 0
                        && toks[i - 1].is_punct('.')
                        && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                    {
                        let recv = receiver_chain(toks, i - 1);
                        if recv.is_empty() {
                            continue;
                        }
                        if let Some(top) = guards.last() {
                            if top.0 == recv && recv.ends_with("[_]") {
                                out.push(Finding {
                                    rule: "lock-order",
                                    line: toks[i].line,
                                    col: toks[i].col,
                                    message: format!(
                                        "second lock from the indexed table `{recv}` \
                                         acquired while one is already held: acquisition \
                                         order depends on dynamic indices — a static \
                                         deadlock hazard; release the first guard or \
                                         sort the indices"
                                    ),
                                });
                            } else if top.0 != recv {
                                pairs.push((top.0.clone(), recv.clone(), i));
                            }
                        }
                        let let_bound = (stmt_start..i).any(|k| toks[k].is_ident("let"));
                        guards.push((recv, depth, let_bound));
                    }
                }
            }
        }
    }
    for (a, b, tok) in &pairs {
        if pairs.iter().any(|(x, y, _)| x == b && y == a) {
            let t = &toks[*tok];
            out.push(Finding {
                rule: "lock-order",
                line: t.line,
                col: t.col,
                message: format!(
                    "`{b}` locked while holding `{a}`, but elsewhere in this file \
                     `{a}` is locked while holding `{b}`: inconsistent lock order is \
                     a static deadlock hazard; pick one global order"
                ),
            });
        }
    }
}

/// `iter-order-taint`: runs the [`TaintMap`] fixpoint per function and
/// reports every tainted value reaching a schedule-time or metrics
/// sink.
fn scan_iter_order_taint(
    toks: &[Token],
    ctx: &FileContext,
    idx: &FileIndex,
    hash_names: &[String],
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
) {
    if !ctx.is_sim_state() || ctx.kind != SourceKind::Lib {
        return;
    }
    // Names the file declares with a hash type annotation also count
    // as unordered sources, beyond the let/field patterns the
    // float-accum rule tracks.
    let mut names: Vec<String> = hash_names.to_vec();
    for (name, ty) in &idx.type_of {
        if (ty == "HashMap" || ty == "HashSet") && !names.contains(name) {
            names.push(name.clone());
        }
    }
    if names.is_empty() {
        return;
    }
    for f in &idx.fns {
        if f.body.is_empty() || in_test(f.body.start) {
            continue;
        }
        let ud = UseDef::build(toks, f);
        let tm = TaintMap::build(toks, f, &ud, &names);
        for hit in tm.sink_hits() {
            let t = &toks[hit.sink_tok];
            let what = if hit.sink.starts_with("schedule_") {
                "the time argument of"
            } else {
                "the metrics write"
            };
            out.push(Finding {
                rule: "iter-order-taint",
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}` derives from unordered-container iteration (line {}) and \
                     flows into {what} `{}`: the result depends on hasher visit \
                     order; iterate an ordered container or sort before deriving \
                     times/metrics",
                    hit.name, hit.source_line, hit.sink
                ),
            });
        }
    }
}

/// Heap-allocating constructors by `Path :: name` pattern.
const ALLOC_PATHS: &[(&str, &str)] = &[
    ("Box", "new"),
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("String", "new"),
    ("String", "from"),
];

/// Heap-allocating method calls (`.name(`) on declared heap types or
/// unconditionally allocating conversions.
const ALLOC_METHODS: &[&str] = &["to_string", "to_owned", "to_vec"];

/// Types whose `.clone()` is a heap allocation.
const HEAP_TYPES: &[&str] = &[
    "String", "Vec", "VecDeque", "Box", "BTreeMap", "BTreeSet", "HashMap", "HashSet",
];

/// `alloc-in-hot`: allocation calls inside non-constructor functions
/// of `[hot_paths]` files. Constructor-shaped functions (`new`,
/// `default`, `from_*`, `with_*`) are setup, not steady state, and
/// stay exempt — that distinction is what the item index buys.
fn scan_alloc_in_hot(
    toks: &[Token],
    ctx: &FileContext,
    idx: &FileIndex,
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
) {
    if !ctx.hot || ctx.kind != SourceKind::Lib {
        return;
    }
    for f in &idx.fns {
        if f.body.is_empty() || in_test(f.body.start) {
            continue;
        }
        if f.name == "new"
            || f.name == "default"
            || f.name.starts_with("from_")
            || f.name.starts_with("with_")
        {
            continue;
        }
        for i in f.body.clone() {
            let Some(name) = toks[i].ident() else {
                continue;
            };
            let push = |out: &mut Vec<Finding>, what: &str| {
                let t = &toks[i];
                out.push(Finding {
                    rule: "alloc-in-hot",
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "{what} in `{}`, a non-constructor function of a [hot_paths] \
                         file: measured hot paths are allocation-free in steady state \
                         (DESIGN.md \u{a7}10/\u{a7}11); hoist the allocation to setup, reuse a \
                         buffer, or record an audited exception",
                        f.name
                    ),
                });
            };
            // `Path :: new (` constructors.
            if toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            {
                if let Some(m) = toks.get(i + 3).and_then(Token::ident) {
                    if toks.get(i + 4).is_some_and(|t| t.is_punct('('))
                        && ALLOC_PATHS.iter().any(|(p, c)| *p == name && *c == m)
                    {
                        push(out, &format!("`{name}::{m}` allocates"));
                    }
                }
                continue;
            }
            // `vec!` / `format!` macros.
            if (name == "vec" || name == "format")
                && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            {
                push(out, &format!("`{name}!` allocates"));
                continue;
            }
            // `.to_string()` / `.to_owned()` / `.to_vec()`.
            if i > 0
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            {
                if ALLOC_METHODS.contains(&name) {
                    push(out, &format!("`.{name}()` allocates"));
                    continue;
                }
                // `.clone()` on a name declared with a heap type.
                if name == "clone" {
                    let recv = receiver_chain(toks, i - 1);
                    let last = recv.rsplit(['.']).next().unwrap_or("");
                    if let Some(ty) = idx.declared_type(last) {
                        if HEAP_TYPES.contains(&ty) {
                            push(
                                out,
                                &format!("`.clone()` of `{last}` (declared `{ty}`) allocates"),
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Detects `Box::new` inside the argument list of a `schedule_*` call
/// outside simcore. The engine's generic `schedule_*` methods box
/// oversized captures themselves (counted by `sim.events_boxed`), so a
/// caller-side `Box::new` is always redundant — and usually a sign the
/// call should move to the allocation-free `schedule_fn_*` /
/// `schedule_arg_*` variants. simcore itself is exempt: it owns the
/// boxing fallback.
fn scan_boxed_event(
    toks: &[Token],
    ctx: &FileContext,
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
) {
    if ctx.crate_name == "simcore" {
        return;
    }
    for i in 0..toks.len() {
        if in_test(i) {
            continue;
        }
        let is_schedule = toks[i].ident().is_some_and(|n| n.starts_with("schedule_"));
        if !is_schedule || !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        // Walk the balanced argument list looking for `Box :: new`.
        let mut depth = 0usize;
        let mut j = i + 1;
        while j < toks.len() {
            match toks[j].kind {
                TokenKind::Punct('(') => depth += 1,
                TokenKind::Punct(')') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {
                    if toks[j].is_ident("Box")
                        && toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
                        && toks.get(j + 2).is_some_and(|t| t.is_punct(':'))
                        && toks.get(j + 3).is_some_and(|t| t.is_ident("new"))
                    {
                        let t = &toks[j];
                        out.push(Finding {
                            rule: "boxed-event",
                            line: t.line,
                            col: t.col,
                            message: "Box::new inside a schedule_* call: the engine boxes \
                                      oversized captures itself; pass the closure directly \
                                      or use the inline schedule_fn_*/schedule_arg_* \
                                      variants"
                                .to_owned(),
                        });
                    }
                }
            }
            j += 1;
        }
    }
}

/// 1-based inclusive line spans covered by `#[cfg(test)]` items —
/// used by the suppression layer so allow-comment *examples* inside
/// test code (fixture strings, doc snippets under test) are not
/// parsed as live suppressions.
pub fn test_line_spans(src: &str) -> Vec<(u32, u32)> {
    let toks = tokenize(src);
    find_test_regions(&toks)
        .into_iter()
        .filter(|r| r.start < r.end && r.end <= toks.len())
        .map(|r| (toks[r.start].line, toks[r.end - 1].line))
        .collect()
}

/// Token index ranges covered by `#[cfg(test)]` items.
fn find_test_regions(toks: &[Token]) -> Vec<std::ops::Range<usize>> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('['))
            && toks.get(i + 2).is_some_and(|t| t.is_ident("cfg"))
            && toks.get(i + 3).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 4).is_some_and(|t| t.is_ident("test"))
            && toks.get(i + 5).is_some_and(|t| t.is_punct(')'))
            && toks.get(i + 6).is_some_and(|t| t.is_punct(']'))
        {
            // The guarded item runs to the matching `}` of its first
            // brace, or to the first `;` for brace-less items.
            let mut j = i + 7;
            let mut depth = 0usize;
            let start = i;
            let mut end = None;
            while j < toks.len() {
                match toks[j].kind {
                    TokenKind::Punct('{') => depth += 1,
                    TokenKind::Punct('}') => {
                        depth -= 1;
                        if depth == 0 {
                            end = Some(j + 1);
                            break;
                        }
                    }
                    TokenKind::Punct(';') if depth == 0 => {
                        end = Some(j + 1);
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            let end = end.unwrap_or(toks.len());
            regions.push(start..end);
            i = end;
        } else {
            i += 1;
        }
    }
    regions
}

/// Names declared with a hash-container type in this file: struct
/// fields and lets with `name: HashMap<...>` annotations, plus
/// `let name = HashMap::...` initializations.
fn collect_hash_names(toks: &[Token]) -> Vec<String> {
    let mut names = Vec::new();
    for i in 0..toks.len() {
        let is_hash = |t: &Token| t.is_ident("HashMap") || t.is_ident("HashSet");
        // `name : HashMap <`
        if let Some(name) = toks[i].ident() {
            if toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 2).is_some_and(is_hash)
                && toks.get(i + 3).is_some_and(|t| t.is_punct('<'))
            {
                names.push(name.to_owned());
            }
        }
        // `let [mut] name = HashMap ::` / `= HashSet ::`
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if let Some(name) = toks.get(j).and_then(Token::ident) {
                if toks.get(j + 1).is_some_and(|t| t.is_punct('='))
                    && toks.get(j + 2).is_some_and(is_hash)
                {
                    names.push(name.to_owned());
                }
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

/// Detects float-accumulation-over-hash-iteration: `x.values().sum()`
/// chains and `for` loops over hash containers whose bodies `+=`.
fn scan_float_accum(
    toks: &[Token],
    hash_names: &[String],
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
) {
    let is_hash_name = |t: &Token| t.ident().is_some_and(|n| hash_names.iter().any(|h| h == n));
    let is_iter_method =
        |t: &Token| t.is_ident("values") || t.is_ident("keys") || t.is_ident("iter");

    for i in 0..toks.len() {
        if in_test(i) || !is_hash_name(&toks[i]) {
            continue;
        }
        // Pattern A: `name . values ( ) ... . sum|fold|product (` within
        // the same statement.
        if toks.get(i + 1).is_some_and(|t| t.is_punct('.'))
            && toks.get(i + 2).is_some_and(is_iter_method)
        {
            let mut j = i + 3;
            let limit = (i + 80).min(toks.len());
            while j < limit && !toks[j].is_punct(';') {
                if toks[j].is_punct('.')
                    && toks.get(j + 1).is_some_and(|t| {
                        t.is_ident("sum") || t.is_ident("fold") || t.is_ident("product")
                    })
                {
                    let t = &toks[j + 1];
                    out.push(Finding {
                        rule: "float-accum",
                        line: t.line,
                        col: t.col,
                        message: "reduction over a hash container's iteration order: \
                                  float accumulation is order-sensitive; iterate a \
                                  BTreeMap or collect-and-sort first"
                            .to_owned(),
                    });
                    break;
                }
                j += 1;
            }
        }
    }

    // Pattern B: `for _ in <header mentioning a hash name> { ... += ... }`
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("for") || in_test(i) {
            i += 1;
            continue;
        }
        // Find the `{` opening the loop body; the header is everything
        // after `in` up to it.
        let mut j = i + 1;
        let mut saw_in = false;
        let mut header_has_hash = false;
        let mut depth = 0usize;
        while j < toks.len() {
            match toks[j].kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') => depth = depth.saturating_sub(1),
                TokenKind::Punct('{') if depth == 0 && saw_in => break,
                _ => {
                    if toks[j].is_ident("in") && depth == 0 {
                        saw_in = true;
                    } else if saw_in && is_hash_name(&toks[j]) {
                        header_has_hash = true;
                    }
                }
            }
            j += 1;
        }
        if !header_has_hash || j >= toks.len() {
            i += 1;
            continue;
        }
        // Walk the body for `+=` (adjacent `+` `=`).
        let body_start = j;
        let mut depth = 0usize;
        while j < toks.len() {
            match toks[j].kind {
                TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokenKind::Punct('+')
                    if toks.get(j + 1).is_some_and(|n| {
                        n.is_punct('=') && n.line == toks[j].line && n.col == toks[j].col + 1
                    }) =>
                {
                    out.push(Finding {
                        rule: "float-accum",
                        line: toks[j].line,
                        col: toks[j].col,
                        message: "accumulation inside a loop over a hash container: \
                                  visit order is hasher-dependent; iterate an ordered \
                                  container instead"
                            .to_owned(),
                    });
                }
                _ => {}
            }
            j += 1;
        }
        i = body_start + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_ctx(krate: &str) -> FileContext {
        FileContext {
            crate_name: krate.to_owned(),
            kind: SourceKind::Lib,
            hot: false,
            sync_sanctioned: false,
        }
    }

    fn rules_fired(src: &str, ctx: &FileContext) -> Vec<&'static str> {
        scan(src, ctx).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn hash_container_fires_only_in_sim_state_lib_code() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(rules_fired(src, &lib_ctx("sched")), vec!["hash-container"]);
        assert!(rules_fired(src, &lib_ctx("bench")).is_empty());
        let test_ctx = FileContext {
            crate_name: "sched".into(),
            kind: SourceKind::Test,
            hot: false,
            sync_sanctioned: false,
        };
        assert!(rules_fired(src, &test_ctx).is_empty());
    }

    #[test]
    fn hot_btree_lookup_fires_only_when_hot() {
        let src = "use std::collections::BTreeMap;\nstruct S { t: BTreeSet<u32> }\n";
        assert!(rules_fired(src, &lib_ctx("vnet")).is_empty(), "cold file");
        let hot_ctx = FileContext {
            hot: true,
            ..lib_ctx("vnet")
        };
        assert_eq!(
            rules_fired(src, &hot_ctx),
            vec!["hot-btree-lookup", "hot-btree-lookup"]
        );
        // #[cfg(test)] regions stay exempt even in hot files.
        let test_src = "#[cfg(test)]\nmod tests {\n    use std::collections::BTreeMap;\n}\n";
        assert!(rules_fired(test_src, &hot_ctx).is_empty());
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = "\
struct S;\n\
#[cfg(test)]\n\
mod tests {\n\
    use std::collections::HashMap;\n\
    fn f() { let x: Option<u32> = None; x.unwrap(); }\n\
}\n";
        assert!(rules_fired(src, &lib_ctx("sched")).is_empty());
    }

    #[test]
    fn wall_clock_and_static_mut_and_rand() {
        let src = "\
use std::time::Instant;\n\
static mut COUNTER: u64 = 0;\n\
fn f() { let r = rand::thread_rng(); let t = Instant::now(); }\n";
        let fired = rules_fired(src, &lib_ctx("core"));
        assert!(fired.contains(&"wall-clock"));
        assert!(fired.contains(&"static-mut"));
        assert!(fired.contains(&"unseeded-rand"));
    }

    #[test]
    fn unwrap_flagged_in_lib_not_bin() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(rules_fired(src, &lib_ctx("vfs")), vec!["unwrap-lib"]);
        let bin_ctx = FileContext {
            crate_name: "bench".into(),
            kind: SourceKind::Bin,
            hot: false,
            sync_sanctioned: false,
        };
        assert!(rules_fired(src, &bin_ctx).is_empty());
        // unwrap_or_else is not unwrap
        let src2 = "fn f(x: Option<u32>) -> u32 { x.unwrap_or_else(|| 0) }\n";
        assert!(rules_fired(src2, &lib_ctx("vfs")).is_empty());
    }

    #[test]
    fn float_accum_chain_and_loop_detected() {
        let src = "\
struct S { vals: HashMap<u32, f64> }\n\
impl S {\n\
    fn total(&self) -> f64 { self.vals.values().map(|v| *v).sum() }\n\
    fn loop_total(&self) -> f64 {\n\
        let mut t = 0.0;\n\
        for v in self.vals.values() {\n\
            t += v;\n\
        }\n\
        t\n\
    }\n\
}\n";
        let findings = scan(src, &lib_ctx("sched"));
        let accum: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == "float-accum")
            .collect();
        assert_eq!(accum.len(), 2, "{findings:?}");
        assert_eq!(accum[0].line, 3);
        assert_eq!(accum[1].line, 7);
    }

    #[test]
    fn boxed_event_fires_outside_simcore_only() {
        let src = "\
fn arm(en: &mut Engine<W>) {\n\
    en.schedule_in(delay, Box::new(move |w: &mut W, en| w.tick(en)));\n\
}\n";
        let findings = scan(src, &lib_ctx("core"));
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(
            (findings[0].rule, findings[0].line),
            ("boxed-event", 2),
            "{findings:?}"
        );
        // simcore owns the boxing fallback.
        assert!(rules_fired(src, &lib_ctx("simcore")).is_empty());
        // A plain closure argument is fine anywhere.
        let ok = "fn arm(en: &mut E) { en.schedule_in(delay, move |w, en| w.tick(en)); }\n";
        assert!(rules_fired(ok, &lib_ctx("core")).is_empty());
        // Box::new outside a schedule_* argument list is not this
        // rule's business.
        let other = "fn f() { let b = Box::new(5); schedule_later(); }\n";
        assert!(rules_fired(other, &lib_ctx("core")).is_empty());
    }

    #[test]
    fn sync_primitive_fires_outside_the_sanctioned_shard_layer() {
        let src = "\
use std::sync::{Mutex, RwLock};\n\
use std::sync::atomic::AtomicU64;\n\
struct S { m: Mutex<u32>, n: AtomicU64 }\n";
        assert_eq!(
            rules_fired(src, &lib_ctx("simcore")),
            vec![
                "sync-primitive", // Mutex (use)
                "sync-primitive", // RwLock (use)
                "sync-primitive", // AtomicU64 (use)
                "sync-primitive", // Mutex (field)
                "sync-primitive", // AtomicU64 (field)
            ]
        );
        // The shard synchronizer is the sanctioned holder of locks.
        let sanctioned = FileContext {
            sync_sanctioned: true,
            ..lib_ctx("simcore")
        };
        assert!(rules_fired(src, &sanctioned).is_empty());
        // from_path marks exactly that one file.
        assert!(FileContext::from_path("crates/simcore/src/shard.rs").sync_sanctioned);
        assert!(!FileContext::from_path("crates/simcore/src/metrics.rs").sync_sanctioned);
        // Outside sim-state crates (harness code) the rule is silent,
        // as it is in test/bench targets of sim-state crates.
        assert!(rules_fired(src, &lib_ctx("bench")).is_empty());
        let test_ctx = FileContext {
            kind: SourceKind::Test,
            ..lib_ctx("simcore")
        };
        assert!(rules_fired(src, &test_ctx).is_empty());
    }

    #[test]
    fn mentions_in_comments_and_strings_do_not_fire() {
        let src = "\
// HashMap is discussed here, Instant too\n\
fn f() -> &'static str { \"HashMap Instant thread_rng static mut\" }\n";
        assert!(rules_fired(src, &lib_ctx("sched")).is_empty());
    }

    #[test]
    fn context_from_path_classification() {
        let c = FileContext::from_path("crates/sched/src/wfq.rs");
        assert_eq!((c.crate_name.as_str(), c.kind), ("sched", SourceKind::Lib));
        let c = FileContext::from_path("crates/bench/src/bin/fig1_micro.rs");
        assert_eq!((c.crate_name.as_str(), c.kind), ("bench", SourceKind::Bin));
        let c = FileContext::from_path("tests/determinism.rs");
        assert_eq!(
            (c.crate_name.as_str(), c.kind),
            ("gridvm", SourceKind::Test)
        );
        let c = FileContext::from_path("crates/simcore/benches/event_queue.rs");
        assert_eq!(c.kind, SourceKind::Bench);
    }
}
