//! `gridvm-audit` — the workspace determinism linter.
//!
//! A custom static-analysis pass over the gridvm workspace: a
//! comment/string-aware tokenizer ([`lexer`]), a determinism rule
//! catalogue ([`rules`]), and an allowlist of audited exceptions
//! ([`config`]). The binary (`cargo run -p gridvm-audit`) walks the
//! workspace, scans every Rust source file, and reports findings;
//! `--deny` turns any non-allowlisted finding into a non-zero exit,
//! which is how CI runs it.
//!
//! The companion *runtime* half of the determinism story lives in
//! `gridvm-simcore::audit` (heap/arena/LRU invariant checks); this
//! crate is the static half. DESIGN.md §8 documents both.

pub mod analysis;
pub mod config;
pub mod lexer;
pub mod rules;
pub mod taint;

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use analysis::{FileIndex, SymbolTable};
use config::{json_escape, Allowlist, Baseline, BaselineEntry};
use lexer::tokenize;
use rules::{scan_with, FileContext, Finding, RULES};

/// One `// audit:allow(rule): reason` comment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InlineAllow {
    /// Rule the comment suppresses.
    pub rule: String,
    /// Written justification (mandatory).
    pub reason: String,
    /// 1-based line the suppression applies to: the comment's own line
    /// for a trailing comment, the following line for a standalone one.
    pub target_line: u32,
    /// 1-based line of the comment itself.
    pub line: u32,
}

/// One scanned file's results.
#[derive(Clone, Debug)]
pub struct FileReport {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Findings not covered by any suppression or baseline budget.
    pub findings: Vec<Finding>,
    /// Findings suppressed by an allowlist entry (entry index, finding).
    pub suppressed: Vec<(usize, Finding)>,
    /// Findings suppressed by an inline comment (reason, finding).
    pub inline_allowed: Vec<(String, Finding)>,
    /// Inline suppressions that matched nothing (stale).
    pub unused_inline: Vec<InlineAllow>,
    /// Findings absorbed by the baseline ratchet.
    pub baselined: Vec<Finding>,
}

/// One baseline entry's budget consumption after a scan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BaselineUse {
    /// The committed entry.
    pub entry: BaselineEntry,
    /// How many findings actually matched it. Less than
    /// `entry.count` means progress: the committed budget should be
    /// ratcheted down (or the entry deleted at zero).
    pub used: usize,
}

/// A full workspace scan.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Per-file results for files with at least one finding, sorted by
    /// path.
    pub files: Vec<FileReport>,
    /// Total number of files scanned.
    pub scanned: usize,
    /// Allowlist entry indices that never matched anything (stale
    /// suppressions worth deleting).
    pub unused_allows: Vec<usize>,
    /// Baseline budgets not fully consumed (progress to ratchet), set
    /// by [`apply_baseline`].
    pub stale_baseline: Vec<BaselineUse>,
}

impl Report {
    /// Number of findings not covered by any suppression or baseline.
    pub fn active_findings(&self) -> usize {
        self.files.iter().map(|f| f.findings.len()).sum()
    }

    /// Number of allowlisted findings.
    pub fn suppressed_findings(&self) -> usize {
        self.files.iter().map(|f| f.suppressed.len()).sum()
    }

    /// Number of inline-suppressed findings.
    pub fn inline_allowed_findings(&self) -> usize {
        self.files.iter().map(|f| f.inline_allowed.len()).sum()
    }

    /// Number of findings absorbed by the baseline ratchet.
    pub fn baselined_findings(&self) -> usize {
        self.files.iter().map(|f| f.baselined.len()).sum()
    }

    /// Stale inline suppressions across all files, as
    /// `(path, comment)` pairs.
    pub fn unused_inline(&self) -> Vec<(&str, &InlineAllow)> {
        self.files
            .iter()
            .flat_map(|f| f.unused_inline.iter().map(move |i| (f.path.as_str(), i)))
            .collect()
    }
}

/// Extracts every `// audit:allow(rule): reason` comment from raw
/// source. Malformed suppressions — no closing paren, unknown rule,
/// missing reason — come back as `malformed-suppression` findings: a
/// suppression that silently fails open (or never matches) is itself a
/// defect.
pub fn collect_inline_allows(src: &str) -> (Vec<InlineAllow>, Vec<Finding>) {
    const MARKER: &str = "audit:allow(";
    let mut allows = Vec::new();
    let mut malformed = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let Some(comment_at) = raw.find("//") else {
            continue;
        };
        let comment = &raw[comment_at..];
        let Some(m) = comment.find(MARKER) else {
            continue;
        };
        let col = (comment_at + m) as u32 + 1;
        let mut bad = |message: String| {
            malformed.push(Finding {
                rule: "malformed-suppression",
                line: lineno,
                col,
                message,
            });
        };
        let after = &comment[m + MARKER.len()..];
        let Some(close) = after.find(')') else {
            bad("inline suppression is missing the closing `)`".to_owned());
            continue;
        };
        let rule = after[..close].trim();
        if !RULES.iter().any(|r| r.name == rule) {
            bad(format!(
                "inline suppression names unknown rule `{rule}` (run --list-rules)"
            ));
            continue;
        }
        let rest = &after[close + 1..];
        let reason = rest.strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            bad(format!(
                "inline suppression of `{rule}` has no reason; write \
                 `// audit:allow({rule}): <why this is safe>`"
            ));
            continue;
        }
        // A comment alone on its line covers the next line; a trailing
        // comment covers its own.
        let standalone = raw[..comment_at].trim().is_empty();
        allows.push(InlineAllow {
            rule: rule.to_owned(),
            reason: reason.to_owned(),
            target_line: if standalone { lineno + 1 } else { lineno },
            line: lineno,
        });
    }
    (allows, malformed)
}

/// Scans one file's text as if it lived at `rel_path` (used by both
/// the workspace walk and the fixture tests). `treat_as` overrides the
/// crate-name classification, letting fixtures be scanned as if they
/// were sim-state library code.
pub fn scan_source(
    rel_path: &str,
    src: &str,
    treat_as: Option<&str>,
    allow: &Allowlist,
) -> FileReport {
    scan_source_with(rel_path, src, treat_as, allow, None)
}

/// [`scan_source`] with the optional two-pass workspace symbol table
/// (enables the cross-file half of `shard-state-escape`).
pub fn scan_source_with(
    rel_path: &str,
    src: &str,
    treat_as: Option<&str>,
    allow: &Allowlist,
    symbols: Option<&SymbolTable>,
) -> FileReport {
    let mut ctx = match treat_as {
        Some(krate) => FileContext {
            crate_name: krate.to_owned(),
            kind: rules::SourceKind::Lib,
            hot: false,
            sync_sanctioned: false,
        },
        None => FileContext::from_path(rel_path),
    };
    ctx.hot = allow.is_hot(rel_path);
    let (mut inline, mut malformed) = collect_inline_allows(src);
    // Suppression comments quoted inside `#[cfg(test)]` items (this
    // crate's own tests exercise the syntax in string fixtures) are
    // examples, not live suppressions: drop both the allows and any
    // malformed-syntax findings the comment scan raised there.
    let test_spans = rules::test_line_spans(src);
    let in_test_span = |line: u32| test_spans.iter().any(|&(lo, hi)| (lo..=hi).contains(&line));
    inline.retain(|i| !in_test_span(i.line));
    malformed.retain(|f| !in_test_span(f.line));
    let mut used_inline = vec![false; inline.len()];
    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    let mut inline_allowed = Vec::new();
    let mut all = scan_with(src, &ctx, symbols);
    all.extend(malformed);
    all.sort_by_key(|f| (f.line, f.col, f.rule));
    for f in all {
        if let Some(idx) = allow.matches(rel_path, &f) {
            suppressed.push((idx, f));
            continue;
        }
        let inline_hit = inline
            .iter()
            .position(|i| i.rule == f.rule && i.target_line == f.line);
        match inline_hit {
            Some(i) => {
                used_inline[i] = true;
                inline_allowed.push((inline[i].reason.clone(), f));
            }
            None => findings.push(f),
        }
    }
    let unused_inline = inline
        .into_iter()
        .zip(&used_inline)
        .filter_map(|(i, &used)| (!used).then_some(i))
        .collect();
    FileReport {
        path: rel_path.to_owned(),
        findings,
        suppressed,
        inline_allowed,
        unused_inline,
        baselined: Vec::new(),
    }
}

/// Collects the Rust source files a workspace scan covers: everything
/// under `crates/*/{src,tests,examples,benches}` plus the root `src/`
/// and `tests/`, skipping `target/`, `vendor/` (third-party stand-ins
/// are not held to sim determinism rules), and the linter's own trap
/// fixtures. Paths come back sorted so the linter's own output is
/// deterministic regardless of directory-entry order.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut roots = vec![root.join("src"), root.join("tests"), root.join("examples")];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let dir = entry?.path();
            if dir.is_dir() {
                for sub in ["src", "tests", "examples", "benches"] {
                    roots.push(dir.join(sub));
                }
            }
        }
    }
    for r in roots {
        if r.is_dir() {
            walk(&r, &mut out)?;
        }
    }
    out.retain(|p| {
        !p.components().any(|c| {
            matches!(
                c.as_os_str().to_str(),
                Some("fixtures" | "target" | "vendor")
            )
        })
    });
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scans the whole workspace rooted at `root` against `allow`.
///
/// Two passes: the first builds the workspace [`SymbolTable`] from
/// every file's item index, the second scans each file with cross-file
/// resolution enabled.
pub fn scan_workspace(root: &Path, allow: &Allowlist) -> std::io::Result<Report> {
    let mut files = Vec::new();
    for path in workspace_sources(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = fs::read_to_string(&path)?;
        files.push((rel, src));
    }
    let mut symbols = SymbolTable::default();
    for (rel, src) in &files {
        symbols.add_file(rel, &FileIndex::build(&tokenize(src)));
    }
    let mut report = Report::default();
    let mut used = vec![false; allow.entries.len()];
    for (rel, src) in &files {
        let file = scan_source_with(rel, src, None, allow, Some(&symbols));
        report.scanned += 1;
        for (idx, _) in &file.suppressed {
            used[*idx] = true;
        }
        if !file.findings.is_empty()
            || !file.suppressed.is_empty()
            || !file.inline_allowed.is_empty()
            || !file.unused_inline.is_empty()
        {
            report.files.push(file);
        }
    }
    report.unused_allows = used
        .iter()
        .enumerate()
        .filter_map(|(i, u)| (!u).then_some(i))
        .collect();
    Ok(report)
}

/// Applies the findings ratchet: findings matching a baseline entry's
/// `(path, rule)` move from `findings` to `baselined`, up to the
/// entry's count budget. Budgets not fully consumed land in
/// `report.stale_baseline` — fixed findings whose entries should now
/// be ratcheted down or deleted.
pub fn apply_baseline(report: &mut Report, base: &Baseline) {
    let mut budget: BTreeMap<(&str, &str), usize> = BTreeMap::new();
    for e in &base.entries {
        *budget
            .entry((e.path.as_str(), e.rule.as_str()))
            .or_default() += e.count;
    }
    for file in &mut report.files {
        let mut keep = Vec::new();
        for f in file.findings.drain(..) {
            match budget.get_mut(&(file.path.as_str(), f.rule)) {
                Some(b) if *b > 0 => {
                    *b -= 1;
                    file.baselined.push(f);
                }
                _ => keep.push(f),
            }
        }
        file.findings = keep;
    }
    report.stale_baseline = base
        .entries
        .iter()
        .filter_map(|e| {
            let left = budget
                .get(&(e.path.as_str(), e.rule.as_str()))
                .copied()
                .unwrap_or(0);
            (left > 0).then(|| BaselineUse {
                entry: e.clone(),
                used: e.count.saturating_sub(left),
            })
        })
        .collect();
}

/// The active findings of a report as baseline entries, for
/// `--write-baseline`.
pub fn baseline_entries(report: &Report) -> Vec<BaselineEntry> {
    let mut counts: BTreeMap<(String, &'static str), usize> = BTreeMap::new();
    for file in &report.files {
        for f in &file.findings {
            *counts.entry((file.path.clone(), f.rule)).or_default() += 1;
        }
    }
    counts
        .into_iter()
        .map(|((path, rule), count)| BaselineEntry {
            path,
            rule: rule.to_owned(),
            count,
        })
        .collect()
}

/// Renders the machine-readable `--json` report.
pub fn render_json(report: &Report, allow: &Allowlist) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"gridvm-audit/v1\",\n");
    out.push_str(&format!("  \"scanned\": {},\n", report.scanned));
    out.push_str(&format!(
        "  \"active\": {},\n  \"allowlisted\": {},\n  \"inline_allowed\": {},\n  \
         \"baselined\": {},\n",
        report.active_findings(),
        report.suppressed_findings(),
        report.inline_allowed_findings(),
        report.baselined_findings()
    ));
    out.push_str("  \"files\": [");
    let mut first_file = true;
    for file in &report.files {
        if !first_file {
            out.push(',');
        }
        first_file = false;
        out.push_str(&format!("\n    {{\"path\": {},", json_escape(&file.path)));
        for (key, list) in [("findings", &file.findings), ("baselined", &file.baselined)] {
            out.push_str(&format!(" \"{key}\": ["));
            for (i, f) in list.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n      {{\"rule\": {}, \"line\": {}, \"col\": {}, \"message\": {}}}",
                    json_escape(f.rule),
                    f.line,
                    f.col,
                    json_escape(&f.message)
                ));
            }
            out.push_str("],");
        }
        out.push_str(&format!(
            " \"allowlisted\": {}, \"inline_allowed\": {}}}",
            file.suppressed.len(),
            file.inline_allowed.len()
        ));
    }
    out.push_str("],\n");
    out.push_str("  \"unused_allows\": [");
    for (i, idx) in report.unused_allows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let e = &allow.entries[*idx];
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"path\": {}, \"toml_line\": {}}}",
            json_escape(&e.rule),
            json_escape(&e.path),
            e.line
        ));
    }
    out.push_str("],\n");
    out.push_str("  \"unused_inline\": [");
    for (i, (path, ia)) in report.unused_inline().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"path\": {}, \"rule\": {}, \"line\": {}}}",
            json_escape(path),
            json_escape(&ia.rule),
            ia.line
        ));
    }
    out.push_str("],\n");
    out.push_str("  \"stale_baseline\": [");
    for (i, b) in report.stale_baseline.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"path\": {}, \"rule\": {}, \"count\": {}, \"used\": {}}}",
            json_escape(&b.entry.path),
            json_escape(&b.entry.rule),
            b.entry.count,
            b.used
        ));
    }
    out.push_str("]\n}\n");
    out
}

/// Renders `RULES.md` from the catalogue. The committed file is kept
/// in sync by a unit test and a CI diff against `--rules-md`.
pub fn render_rules_md() -> String {
    let mut out = String::new();
    out.push_str("# gridvm-audit rule catalogue\n\n");
    out.push_str(
        "<!-- Generated by `cargo run -p gridvm-audit -- --rules-md`. Do not edit by\n     \
         hand: CI diffs this file against the generator's output. -->\n\n",
    );
    out.push_str(
        "Static determinism rules enforced over the workspace (`--deny` in CI).\n\
         Suppressions: an `audit.toml` `[[allow]]` entry (rule/path/reason) or an\n\
         inline `// audit:allow(rule): <reason>` comment covering the next line\n\
         (or its own, when trailing code). Both demand a written reason; stale\n\
         suppressions fail deny mode unless `--allow-stale`. Known findings ride\n\
         the `audit_baseline.json` ratchet (`--baseline`), which only ever\n\
         shrinks. DESIGN.md \u{a7}13 documents the architecture.\n\n",
    );
    out.push_str("| rule | hazard |\n|------|--------|\n");
    for r in RULES {
        out.push_str(&format!("| `{}` | {} |\n", r.name, r.summary));
    }
    out
}

/// Locates the workspace root by walking up from `start` until a
/// directory containing both `Cargo.toml` and `crates/` is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_source_splits_active_and_suppressed() {
        let allow = Allowlist::parse(
            "[[allow]]\nrule = \"wall-clock\"\npath = \"crates/demo\"\nreason = \"timers\"\n",
        )
        .expect("parses");
        let src = "use std::time::Instant;\nstatic mut X: u8 = 0;\n";
        let report = scan_source("crates/demo/src/lib.rs", src, None, &allow);
        assert_eq!(report.suppressed.len(), 1);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, "static-mut");
    }

    #[test]
    fn treat_as_reclassifies_as_sim_state_lib() {
        let allow = Allowlist::default();
        let src = "use std::collections::HashMap;\n";
        // As a test file nothing fires; treated as sched lib code it does.
        let as_test = scan_source("tests/fixture.rs", src, None, &allow);
        assert!(as_test.findings.is_empty());
        let as_sched = scan_source("tests/fixture.rs", src, Some("sched"), &allow);
        assert_eq!(as_sched.findings.len(), 1);
    }

    #[test]
    fn inline_allow_standalone_covers_next_line_trailing_covers_own() {
        let src = "\
// audit:allow(hash-container): keys are never iterated, lookup-only cache
use std::collections::HashMap;
static mut X: u8 = 0; // audit:allow(static-mut): test-only knob, single thread
use std::time::Instant;
";
        let report = scan_source("crates/sched/src/x.rs", src, None, &Allowlist::default());
        let active: Vec<_> = report.findings.iter().map(|f| f.rule).collect();
        assert_eq!(active, vec!["wall-clock"], "{:?}", report.findings);
        assert_eq!(
            report.inline_allowed.len(),
            2,
            "{:?}",
            report.inline_allowed
        );
        assert!(report.unused_inline.is_empty());
    }

    #[test]
    fn malformed_and_stale_inline_suppressions_are_reported() {
        let src = "\
// audit:allow(hash-container)
fn nothing_here() {}
// audit:allow(no-such-rule): reason text
// audit:allow(wall-clock): nothing on the next line uses a clock
fn still_nothing() {}
";
        let (allows, malformed) = collect_inline_allows(src);
        assert_eq!(allows.len(), 1, "{allows:?}");
        assert_eq!(malformed.len(), 2, "{malformed:?}");
        assert!(malformed.iter().all(|f| f.rule == "malformed-suppression"));
        let report = scan_source("crates/sched/src/x.rs", src, None, &Allowlist::default());
        // Both malformed comments become findings; the well-formed but
        // unmatched wall-clock one is stale.
        assert_eq!(report.findings.len(), 2, "{:?}", report.findings);
        assert_eq!(report.unused_inline.len(), 1);
        assert_eq!(report.unused_inline[0].rule, "wall-clock");
    }

    #[test]
    fn baseline_absorbs_known_findings_and_reports_progress() {
        let mut report = Report {
            files: vec![FileReport {
                path: "crates/sched/src/x.rs".into(),
                findings: vec![
                    Finding {
                        rule: "hash-container",
                        line: 1,
                        col: 1,
                        message: String::new(),
                    },
                    Finding {
                        rule: "hash-container",
                        line: 2,
                        col: 1,
                        message: String::new(),
                    },
                ],
                suppressed: Vec::new(),
                inline_allowed: Vec::new(),
                unused_inline: Vec::new(),
                baselined: Vec::new(),
            }],
            scanned: 1,
            ..Report::default()
        };
        let base = Baseline {
            note: "test".into(),
            entries: vec![
                BaselineEntry {
                    path: "crates/sched/src/x.rs".into(),
                    rule: "hash-container".into(),
                    count: 3,
                },
                BaselineEntry {
                    path: "crates/vnet/src/y.rs".into(),
                    rule: "alloc-in-hot".into(),
                    count: 1,
                },
            ],
        };
        apply_baseline(&mut report, &base);
        assert_eq!(report.active_findings(), 0);
        assert_eq!(report.baselined_findings(), 2);
        // Budget 3 with 2 matches and the untouched vnet entry are both
        // stale.
        assert_eq!(
            report.stale_baseline.len(),
            2,
            "{:?}",
            report.stale_baseline
        );
        assert_eq!(report.stale_baseline[0].used, 2);
        assert_eq!(report.stale_baseline[1].used, 0);
    }

    #[test]
    fn json_report_parses_back_and_counts_match() {
        let allow = Allowlist::default();
        let src = "use std::collections::HashMap;\nuse std::time::Instant;\n";
        let file = scan_source("crates/sched/src/x.rs", src, None, &allow);
        let report = Report {
            files: vec![file],
            scanned: 1,
            ..Report::default()
        };
        let text = render_json(&report, &allow);
        // The hand-rolled parser in config::json accepts its sibling
        // serializer's output.
        let parsed = config::Baseline::parse(&text);
        // Wrong schema for a *baseline*, but it must fail on schema —
        // not on JSON shape.
        let err = parsed.unwrap_err();
        assert!(err.message.contains("schema"), "{err}");
        assert!(text.contains("\"active\": 2"), "{text}");
    }

    #[test]
    fn rules_md_lists_every_rule() {
        let md = render_rules_md();
        for r in RULES {
            assert!(
                md.contains(&format!("| `{}` |", r.name)),
                "{} missing",
                r.name
            );
        }
    }
}
