//! `gridvm-audit` — the workspace determinism linter.
//!
//! A custom static-analysis pass over the gridvm workspace: a
//! comment/string-aware tokenizer ([`lexer`]), a determinism rule
//! catalogue ([`rules`]), and an allowlist of audited exceptions
//! ([`config`]). The binary (`cargo run -p gridvm-audit`) walks the
//! workspace, scans every Rust source file, and reports findings;
//! `--deny` turns any non-allowlisted finding into a non-zero exit,
//! which is how CI runs it.
//!
//! The companion *runtime* half of the determinism story lives in
//! `gridvm-simcore::audit` (heap/arena/LRU invariant checks); this
//! crate is the static half. DESIGN.md §8 documents both.

pub mod config;
pub mod lexer;
pub mod rules;

use std::fs;
use std::path::{Path, PathBuf};

use config::Allowlist;
use rules::{scan, FileContext, Finding};

/// One scanned file's results.
#[derive(Clone, Debug)]
pub struct FileReport {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Findings not covered by the allowlist.
    pub findings: Vec<Finding>,
    /// Findings suppressed by an allowlist entry (entry index, finding).
    pub suppressed: Vec<(usize, Finding)>,
}

/// A full workspace scan.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Per-file results for files with at least one finding, sorted by
    /// path.
    pub files: Vec<FileReport>,
    /// Total number of files scanned.
    pub scanned: usize,
    /// Allowlist entry indices that never matched anything (stale
    /// suppressions worth deleting).
    pub unused_allows: Vec<usize>,
}

impl Report {
    /// Number of non-allowlisted findings.
    pub fn active_findings(&self) -> usize {
        self.files.iter().map(|f| f.findings.len()).sum()
    }

    /// Number of allowlisted findings.
    pub fn suppressed_findings(&self) -> usize {
        self.files.iter().map(|f| f.suppressed.len()).sum()
    }
}

/// Scans one file's text as if it lived at `rel_path` (used by both
/// the workspace walk and the fixture tests). `treat_as` overrides the
/// crate-name classification, letting fixtures be scanned as if they
/// were sim-state library code.
pub fn scan_source(
    rel_path: &str,
    src: &str,
    treat_as: Option<&str>,
    allow: &Allowlist,
) -> FileReport {
    let mut ctx = match treat_as {
        Some(krate) => FileContext {
            crate_name: krate.to_owned(),
            kind: rules::SourceKind::Lib,
            hot: false,
            sync_sanctioned: false,
        },
        None => FileContext::from_path(rel_path),
    };
    ctx.hot = allow.is_hot(rel_path);
    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    for f in scan(src, &ctx) {
        match allow.matches(rel_path, &f) {
            Some(idx) => suppressed.push((idx, f)),
            None => findings.push(f),
        }
    }
    FileReport {
        path: rel_path.to_owned(),
        findings,
        suppressed,
    }
}

/// Collects the Rust source files a workspace scan covers: everything
/// under `crates/*/{src,tests,examples,benches}` plus the root `src/`
/// and `tests/`, skipping `target/`, `vendor/` (third-party stand-ins
/// are not held to sim determinism rules), and the linter's own trap
/// fixtures. Paths come back sorted so the linter's own output is
/// deterministic regardless of directory-entry order.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut roots = vec![root.join("src"), root.join("tests")];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let dir = entry?.path();
            if dir.is_dir() {
                for sub in ["src", "tests", "examples", "benches"] {
                    roots.push(dir.join(sub));
                }
            }
        }
    }
    for r in roots {
        if r.is_dir() {
            walk(&r, &mut out)?;
        }
    }
    out.retain(|p| {
        !p.components().any(|c| {
            matches!(
                c.as_os_str().to_str(),
                Some("fixtures" | "target" | "vendor")
            )
        })
    });
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scans the whole workspace rooted at `root` against `allow`.
pub fn scan_workspace(root: &Path, allow: &Allowlist) -> std::io::Result<Report> {
    let mut report = Report::default();
    let mut used = vec![false; allow.entries.len()];
    for path in workspace_sources(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = fs::read_to_string(&path)?;
        let file = scan_source(&rel, &src, None, allow);
        report.scanned += 1;
        for (idx, _) in &file.suppressed {
            used[*idx] = true;
        }
        if !file.findings.is_empty() || !file.suppressed.is_empty() {
            report.files.push(file);
        }
    }
    report.unused_allows = used
        .iter()
        .enumerate()
        .filter_map(|(i, u)| (!u).then_some(i))
        .collect();
    Ok(report)
}

/// Locates the workspace root by walking up from `start` until a
/// directory containing both `Cargo.toml` and `crates/` is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_source_splits_active_and_suppressed() {
        let allow = Allowlist::parse(
            "[[allow]]\nrule = \"wall-clock\"\npath = \"crates/demo\"\nreason = \"timers\"\n",
        )
        .expect("parses");
        let src = "use std::time::Instant;\nstatic mut X: u8 = 0;\n";
        let report = scan_source("crates/demo/src/lib.rs", src, None, &allow);
        assert_eq!(report.suppressed.len(), 1);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, "static-mut");
    }

    #[test]
    fn treat_as_reclassifies_as_sim_state_lib() {
        let allow = Allowlist::default();
        let src = "use std::collections::HashMap;\n";
        // As a test file nothing fires; treated as sched lib code it does.
        let as_test = scan_source("tests/fixture.rs", src, None, &allow);
        assert!(as_test.findings.is_empty());
        let as_sched = scan_source("tests/fixture.rs", src, Some("sched"), &allow);
        assert_eq!(as_sched.findings.len(), 1);
    }
}
