//! Fixture-based tests for the linter itself: known-bad snippets must
//! produce exactly these diagnostics (rule, line, column), known-good
//! snippets none, and allowlist entries must suppress precisely the
//! findings they name.

use gridvm_audit::config::Allowlist;
use gridvm_audit::scan_source;

fn fixture(name: &str) -> (String, String) {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).expect("fixture exists");
    (format!("crates/audit/tests/fixtures/{name}"), src)
}

fn diagnostics(name: &str, treat_as: &str) -> Vec<(&'static str, u32, u32)> {
    let (rel, src) = fixture(name);
    scan_source(&rel, &src, Some(treat_as), &Allowlist::default())
        .findings
        .into_iter()
        .map(|f| (f.rule, f.line, f.col))
        .collect()
}

#[test]
fn bad_hash_fixture_exact_diagnostics() {
    assert_eq!(
        diagnostics("bad_hash.rs", "sched"),
        vec![
            ("hash-container", 4, 23),
            ("hash-container", 7, 14),
            ("float-accum", 12, 40),
            ("float-accum", 18, 17),
        ]
    );
}

#[test]
fn bad_misc_fixture_exact_diagnostics() {
    assert_eq!(
        diagnostics("bad_misc.rs", "vnet"),
        vec![
            ("wall-clock", 3, 16),
            ("static-mut", 5, 1),
            ("wall-clock", 8, 19),
            ("unseeded-rand", 9, 25),
            ("unwrap-lib", 10, 45),
            ("boxed-event", 14, 27),
        ]
    );
}

#[test]
fn bad_sync_fixture_exact_diagnostics() {
    assert_eq!(
        diagnostics("bad_sync.rs", "simcore"),
        vec![
            ("sync-primitive", 4, 25),
            ("sync-primitive", 5, 17),
            ("sync-primitive", 5, 24),
            ("sync-primitive", 8, 12),
            ("sync-primitive", 9, 12),
            ("sync-primitive", 10, 11),
        ]
    );
    // Outside the sim-state crate list (harness code) the rule is
    // silent.
    assert_eq!(diagnostics("bad_sync.rs", "bench"), vec![]);
}

#[test]
fn good_fixture_is_clean() {
    assert_eq!(diagnostics("good.rs", "sched"), vec![]);
}

#[test]
fn bad_hot_btree_fixture_fires_only_when_listed_hot() {
    // Without a [hot_paths] listing the fixture is silent: ordered
    // containers are fine on cold paths.
    assert_eq!(diagnostics("bad_hot_btree.rs", "vnet"), vec![]);

    // Listed under [hot_paths], every declaration outside #[cfg(test)]
    // is flagged.
    let (rel, src) = fixture("bad_hot_btree.rs");
    let allow =
        Allowlist::parse("[hot_paths]\npath = \"crates/audit/tests/fixtures/bad_hot_btree.rs\"\n")
            .expect("parses");
    let report = scan_source(&rel, &src, Some("vnet"), &allow);
    let diags: Vec<_> = report
        .findings
        .iter()
        .map(|f| (f.rule, f.line, f.col))
        .collect();
    assert_eq!(
        diags,
        vec![
            ("hot-btree-lookup", 4, 24),
            ("hot-btree-lookup", 4, 34),
            ("hot-btree-lookup", 7, 13),
            ("hot-btree-lookup", 8, 12),
        ]
    );

    // An allowlist entry with a written reason suppresses it, like
    // any other rule.
    let allow = Allowlist::parse(
        "[hot_paths]\n\
         path = \"crates/audit/tests/fixtures/bad_hot_btree.rs\"\n\
         [[allow]]\n\
         rule = \"hot-btree-lookup\"\n\
         path = \"crates/audit/tests/fixtures\"\n\
         reason = \"fixture exercises suppression\"\n",
    )
    .expect("parses");
    let report = scan_source(&rel, &src, Some("vnet"), &allow);
    assert!(report.findings.is_empty());
    assert_eq!(report.suppressed.len(), 4);
}

#[test]
fn hash_rules_require_sim_state_crate_context() {
    // Outside the sim-state crate list the hash-container rule does
    // not apply; float-accum still does (order-sensitive arithmetic is
    // wrong in any crate), as does the wall-clock/rand/unwrap family.
    assert_eq!(
        diagnostics("bad_hash.rs", "bench"),
        vec![("float-accum", 12, 40), ("float-accum", 18, 17)]
    );
    assert_eq!(diagnostics("bad_misc.rs", "bench").len(), 6);
}

#[test]
fn allowlist_suppresses_named_rule_only() {
    let (rel, src) = fixture("bad_misc.rs");
    let allow = Allowlist::parse(
        "[[allow]]\n\
         rule = \"wall-clock\"\n\
         path = \"crates/audit/tests/fixtures\"\n\
         reason = \"fixture exercises suppression\"\n",
    )
    .expect("parses");
    let report = scan_source(&rel, &src, Some("vnet"), &allow);
    let active: Vec<_> = report.findings.iter().map(|f| f.rule).collect();
    assert_eq!(
        active,
        vec!["static-mut", "unseeded-rand", "unwrap-lib", "boxed-event"]
    );
    assert_eq!(
        report.suppressed.len(),
        2,
        "both Instant sightings suppressed"
    );
    assert!(report
        .suppressed
        .iter()
        .all(|(idx, f)| *idx == 0 && f.rule == "wall-clock"));
}

#[test]
fn wildcard_allowlist_suppresses_everything() {
    let (rel, src) = fixture("bad_hash.rs");
    let allow = Allowlist::parse(
        "[[allow]]\nrule = \"*\"\npath = \"crates/audit\"\nreason = \"fixtures trip rules\"\n",
    )
    .expect("parses");
    let report = scan_source(&rel, &src, Some("sched"), &allow);
    assert!(report.findings.is_empty());
    assert_eq!(report.suppressed.len(), 4);
}

#[test]
fn bad_shard_escape_fixture_exact_diagnostics() {
    assert_eq!(
        diagnostics("bad_shard_escape.rs", "simcore"),
        vec![
            ("shard-state-escape", 5, 28),
            ("shard-state-escape", 11, 17),
        ]
    );
    // Outside the sim-state crate list the rule is silent.
    assert_eq!(diagnostics("bad_shard_escape.rs", "bench"), vec![]);
}

#[test]
fn shard_escape_cross_file_field_requires_symbol_table() {
    use gridvm_audit::analysis::{FileIndex, SymbolTable};
    use gridvm_audit::lexer::tokenize;

    // A shard.rs stand-in declaring `inbox_seq` as a *private* field
    // and `world` as a `pub` one.
    let shard_src = "pub struct SiteRuntime { inbox_seq: u64, pub world: World }\n";
    let mut table = SymbolTable::default();
    table.add_file(
        "crates/simcore/src/shard.rs",
        &FileIndex::build(&tokenize(shard_src)),
    );

    let (rel, src) = fixture("bad_shard_escape.rs");
    // Without the symbol table the field poke is invisible.
    let report = scan_source(&rel, &src, Some("simcore"), &Allowlist::default());
    assert_eq!(report.findings.len(), 2);
    // With it, `site.inbox_seq += 1` is a protocol violation...
    let report = gridvm_audit::scan_source_with(
        &rel,
        &src,
        Some("simcore"),
        &Allowlist::default(),
        Some(&table),
    );
    let diags: Vec<_> = report
        .findings
        .iter()
        .map(|f| (f.rule, f.line, f.col))
        .collect();
    assert_eq!(
        diags,
        vec![
            ("shard-state-escape", 5, 28),
            ("shard-state-escape", 11, 17),
            ("shard-state-escape", 20, 10),
        ]
    );
    // ...while a `pub` field with the same owner stays legal: only
    // the private `inbox_seq` is reported as protocol state, never
    // the `pub world` field (the multisite regression).
    assert!(!report
        .findings
        .iter()
        .any(|f| f.message.contains("`.world`")));
    assert_eq!(
        report
            .findings
            .iter()
            .filter(|f| f.message.contains("`.inbox_seq`"))
            .count(),
        1
    );
}

#[test]
fn bad_lock_order_fixture_exact_diagnostics() {
    assert_eq!(
        diagnostics("bad_lock_order.rs", "simcore"),
        vec![
            ("lock-order", 5, 24),
            ("lock-order", 12, 25),
            ("lock-order", 19, 28),
        ]
    );
}

#[test]
fn bad_iter_taint_fixture_exact_diagnostics() {
    assert_eq!(
        diagnostics("bad_iter_taint.rs", "simcore"),
        vec![
            ("hash-container", 5, 16),
            ("iter-order-taint", 7, 15),
            ("hash-container", 12, 18),
            ("float-accum", 15, 15),
            ("iter-order-taint", 17, 11),
        ]
    );
}

#[test]
fn bad_alloc_hot_fixture_fires_only_when_listed_hot() {
    // Cold files may allocate freely.
    assert_eq!(diagnostics("bad_alloc_hot.rs", "vnet"), vec![]);

    let (rel, src) = fixture("bad_alloc_hot.rs");
    let allow =
        Allowlist::parse("[hot_paths]\npath = \"crates/audit/tests/fixtures/bad_alloc_hot.rs\"\n")
            .expect("parses");
    let report = scan_source(&rel, &src, Some("vnet"), &allow);
    let diags: Vec<_> = report
        .findings
        .iter()
        .map(|f| (f.rule, f.line, f.col))
        .collect();
    // `new()` is constructor-shaped and exempt; every allocation in
    // `forward` is flagged.
    assert_eq!(
        diags,
        vec![
            ("alloc-in-hot", 17, 25),
            ("alloc-in-hot", 18, 19),
            ("alloc-in-hot", 19, 32),
            ("alloc-in-hot", 20, 31),
        ]
    );
}

#[test]
fn committed_rules_md_matches_generator() {
    // RULES.md is generated (`--rules-md`); CI diffs it too, but this
    // test catches drift before push.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let committed = std::fs::read_to_string(root.join("RULES.md")).expect("RULES.md exists");
    assert_eq!(
        committed,
        gridvm_audit::render_rules_md(),
        "RULES.md is stale: regenerate with \
         `cargo run -p gridvm-audit -- --rules-md > RULES.md`"
    );
}

#[test]
fn workspace_scan_is_clean_under_repo_allowlist_and_baseline() {
    // The repo's own audit.toml + audit_baseline.json must keep
    // `--deny` green: zero active findings across the entire workspace
    // and no stale suppression of any kind. This is the same check CI
    // runs via the binary.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let allow_text = std::fs::read_to_string(root.join("audit.toml")).expect("audit.toml exists");
    let allow = Allowlist::parse(&allow_text).expect("audit.toml parses");
    let mut report = gridvm_audit::scan_workspace(&root, &allow).expect("scan succeeds");
    let base_text =
        std::fs::read_to_string(root.join("audit_baseline.json")).expect("baseline exists");
    let base = gridvm_audit::config::Baseline::parse(&base_text).expect("baseline parses");
    gridvm_audit::apply_baseline(&mut report, &base);
    let messages: Vec<String> = report
        .files
        .iter()
        .flat_map(|f| {
            f.findings
                .iter()
                .map(move |d| format!("{}:{}:{} [{}]", f.path, d.line, d.col, d.rule))
        })
        .collect();
    assert_eq!(
        report.active_findings(),
        0,
        "unexpected findings: {messages:#?}"
    );
    assert!(
        report.scanned > 100,
        "workspace scan saw {} files",
        report.scanned
    );
    assert!(
        report.baselined_findings() > 0,
        "the committed baseline must absorb at least one finding or be deleted"
    );
    assert_eq!(
        report.unused_allows,
        Vec::<usize>::new(),
        "stale audit.toml entries"
    );
    assert!(
        report.unused_inline().is_empty(),
        "stale inline audit:allow comments: {:?}",
        report.unused_inline()
    );
    assert!(
        report.stale_baseline.is_empty(),
        "baseline entries with unused budget: {:?}",
        report
            .stale_baseline
            .iter()
            .map(|b| (&b.entry.path, &b.entry.rule, b.entry.count, b.used))
            .collect::<Vec<_>>()
    );
}
