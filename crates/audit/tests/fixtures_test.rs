//! Fixture-based tests for the linter itself: known-bad snippets must
//! produce exactly these diagnostics (rule, line, column), known-good
//! snippets none, and allowlist entries must suppress precisely the
//! findings they name.

use gridvm_audit::config::Allowlist;
use gridvm_audit::scan_source;

fn fixture(name: &str) -> (String, String) {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).expect("fixture exists");
    (format!("crates/audit/tests/fixtures/{name}"), src)
}

fn diagnostics(name: &str, treat_as: &str) -> Vec<(&'static str, u32, u32)> {
    let (rel, src) = fixture(name);
    scan_source(&rel, &src, Some(treat_as), &Allowlist::default())
        .findings
        .into_iter()
        .map(|f| (f.rule, f.line, f.col))
        .collect()
}

#[test]
fn bad_hash_fixture_exact_diagnostics() {
    assert_eq!(
        diagnostics("bad_hash.rs", "sched"),
        vec![
            ("hash-container", 4, 23),
            ("hash-container", 7, 14),
            ("float-accum", 12, 40),
            ("float-accum", 18, 17),
        ]
    );
}

#[test]
fn bad_misc_fixture_exact_diagnostics() {
    assert_eq!(
        diagnostics("bad_misc.rs", "vnet"),
        vec![
            ("wall-clock", 3, 16),
            ("static-mut", 5, 1),
            ("wall-clock", 8, 19),
            ("unseeded-rand", 9, 25),
            ("unwrap-lib", 10, 45),
            ("boxed-event", 14, 27),
        ]
    );
}

#[test]
fn bad_sync_fixture_exact_diagnostics() {
    assert_eq!(
        diagnostics("bad_sync.rs", "simcore"),
        vec![
            ("sync-primitive", 4, 25),
            ("sync-primitive", 5, 17),
            ("sync-primitive", 5, 24),
            ("sync-primitive", 8, 12),
            ("sync-primitive", 9, 12),
            ("sync-primitive", 10, 11),
        ]
    );
    // Outside the sim-state crate list (harness code) the rule is
    // silent.
    assert_eq!(diagnostics("bad_sync.rs", "bench"), vec![]);
}

#[test]
fn good_fixture_is_clean() {
    assert_eq!(diagnostics("good.rs", "sched"), vec![]);
}

#[test]
fn bad_hot_btree_fixture_fires_only_when_listed_hot() {
    // Without a [hot_paths] listing the fixture is silent: ordered
    // containers are fine on cold paths.
    assert_eq!(diagnostics("bad_hot_btree.rs", "vnet"), vec![]);

    // Listed under [hot_paths], every declaration outside #[cfg(test)]
    // is flagged.
    let (rel, src) = fixture("bad_hot_btree.rs");
    let allow =
        Allowlist::parse("[hot_paths]\npath = \"crates/audit/tests/fixtures/bad_hot_btree.rs\"\n")
            .expect("parses");
    let report = scan_source(&rel, &src, Some("vnet"), &allow);
    let diags: Vec<_> = report
        .findings
        .iter()
        .map(|f| (f.rule, f.line, f.col))
        .collect();
    assert_eq!(
        diags,
        vec![
            ("hot-btree-lookup", 4, 24),
            ("hot-btree-lookup", 4, 34),
            ("hot-btree-lookup", 7, 13),
            ("hot-btree-lookup", 8, 12),
        ]
    );

    // An allowlist entry with a written reason suppresses it, like
    // any other rule.
    let allow = Allowlist::parse(
        "[hot_paths]\n\
         path = \"crates/audit/tests/fixtures/bad_hot_btree.rs\"\n\
         [[allow]]\n\
         rule = \"hot-btree-lookup\"\n\
         path = \"crates/audit/tests/fixtures\"\n\
         reason = \"fixture exercises suppression\"\n",
    )
    .expect("parses");
    let report = scan_source(&rel, &src, Some("vnet"), &allow);
    assert!(report.findings.is_empty());
    assert_eq!(report.suppressed.len(), 4);
}

#[test]
fn hash_rules_require_sim_state_crate_context() {
    // Outside the sim-state crate list the hash-container rule does
    // not apply; float-accum still does (order-sensitive arithmetic is
    // wrong in any crate), as does the wall-clock/rand/unwrap family.
    assert_eq!(
        diagnostics("bad_hash.rs", "bench"),
        vec![("float-accum", 12, 40), ("float-accum", 18, 17)]
    );
    assert_eq!(diagnostics("bad_misc.rs", "bench").len(), 6);
}

#[test]
fn allowlist_suppresses_named_rule_only() {
    let (rel, src) = fixture("bad_misc.rs");
    let allow = Allowlist::parse(
        "[[allow]]\n\
         rule = \"wall-clock\"\n\
         path = \"crates/audit/tests/fixtures\"\n\
         reason = \"fixture exercises suppression\"\n",
    )
    .expect("parses");
    let report = scan_source(&rel, &src, Some("vnet"), &allow);
    let active: Vec<_> = report.findings.iter().map(|f| f.rule).collect();
    assert_eq!(
        active,
        vec!["static-mut", "unseeded-rand", "unwrap-lib", "boxed-event"]
    );
    assert_eq!(
        report.suppressed.len(),
        2,
        "both Instant sightings suppressed"
    );
    assert!(report
        .suppressed
        .iter()
        .all(|(idx, f)| *idx == 0 && f.rule == "wall-clock"));
}

#[test]
fn wildcard_allowlist_suppresses_everything() {
    let (rel, src) = fixture("bad_hash.rs");
    let allow = Allowlist::parse(
        "[[allow]]\nrule = \"*\"\npath = \"crates/audit\"\nreason = \"fixtures trip rules\"\n",
    )
    .expect("parses");
    let report = scan_source(&rel, &src, Some("sched"), &allow);
    assert!(report.findings.is_empty());
    assert_eq!(report.suppressed.len(), 4);
}

#[test]
fn workspace_scan_is_clean_under_repo_allowlist() {
    // The repo's own audit.toml must keep `--deny` green: zero active
    // findings across the entire workspace. This is the same check CI
    // runs via the binary.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let allow_text = std::fs::read_to_string(root.join("audit.toml")).expect("audit.toml exists");
    let allow = Allowlist::parse(&allow_text).expect("audit.toml parses");
    let report = gridvm_audit::scan_workspace(&root, &allow).expect("scan succeeds");
    let messages: Vec<String> = report
        .files
        .iter()
        .flat_map(|f| {
            f.findings
                .iter()
                .map(move |d| format!("{}:{}:{} [{}]", f.path, d.line, d.col, d.rule))
        })
        .collect();
    assert_eq!(
        report.active_findings(),
        0,
        "unexpected findings: {messages:#?}"
    );
    assert!(
        report.scanned > 100,
        "workspace scan saw {} files",
        report.scanned
    );
    assert_eq!(
        report.unused_allows,
        Vec::<usize>::new(),
        "stale audit.toml entries"
    );
}
