//! Lexer edge cases and property tests: the scanner must never let
//! comment or literal *contents* leak into the token stream, and must
//! keep 1-based line/column positions consistent no matter how the
//! same tokens are laid out.

use gridvm_audit::lexer::{tokenize, TokenKind};
use proptest::prelude::*;

fn idents(src: &str) -> Vec<String> {
    tokenize(src)
        .iter()
        .filter_map(|t| t.ident().map(str::to_owned))
        .collect()
}

fn kinds(src: &str) -> Vec<TokenKind> {
    tokenize(src).into_iter().map(|t| t.kind).collect()
}

#[test]
fn raw_strings_with_hashes_are_single_literals() {
    let src = r####"let x = r#"HashMap "quoted" inside"#; let y = r##"with "# inside"##;"####;
    assert_eq!(
        idents(src),
        vec!["let", "x", "let", "y"],
        "raw-string contents (and the `r` prefix) must not tokenize"
    );
    // The `r#...#` prefix folds into a single Literal token.
    let lit_count = kinds(src)
        .iter()
        .filter(|k| **k == TokenKind::Literal)
        .count();
    assert_eq!(lit_count, 2);
}

#[test]
fn nested_block_comments_are_skipped_entirely() {
    let src = "a /* outer /* inner HashMap */ still comment */ b";
    assert_eq!(idents(src), vec!["a", "b"]);
}

#[test]
fn unterminated_block_comment_consumes_the_rest() {
    let src = "a /* runs off the end\nHashMap::new()";
    assert_eq!(idents(src), vec!["a"]);
}

#[test]
fn lifetime_vs_char_literal() {
    // `'a` in a generic position is a lifetime; `'a'` is a char
    // literal; `'\''` is an escaped char literal.
    let src = "fn f<'a>(x: &'a str) { let c = 'a'; let q = '\\''; }";
    let lifetimes = kinds(src)
        .iter()
        .filter(|k| **k == TokenKind::Lifetime)
        .count();
    let literals = kinds(src)
        .iter()
        .filter(|k| **k == TokenKind::Literal)
        .count();
    assert_eq!(lifetimes, 2, "two uses of 'a as a lifetime");
    assert_eq!(literals, 2, "two char literals");
}

#[test]
fn byte_and_raw_byte_strings_fold_to_literals() {
    let src = r###"let a = b"bytes with spaces"; let b2 = br#"raw "bytes""#; let c = b'x';"###;
    assert_eq!(idents(src), vec!["let", "a", "let", "b2", "let", "c"]);
    let literals = kinds(src)
        .iter()
        .filter(|k| **k == TokenKind::Literal)
        .count();
    assert_eq!(literals, 3);
}

#[test]
fn string_escapes_do_not_terminate_early() {
    let src = r#"let s = "quote \" and backslash \\"; after"#;
    assert_eq!(idents(src), vec!["let", "s", "after"]);
}

#[test]
fn line_comment_to_eol_only() {
    let src = "x // comment HashMap\ny";
    let toks = tokenize(src);
    assert_eq!(idents(src), vec!["x", "y"]);
    assert_eq!(toks[1].line, 2, "y is on line 2");
    assert_eq!(toks[1].col, 1);
}

/// Renders fragment choice `(kind, n)` to source text plus the exact
/// tokens it must contribute.
fn fragment(kind: u8, n: u64) -> (String, Vec<TokenKind>) {
    match kind {
        0 => {
            let s = format!("id{n}");
            let k = vec![TokenKind::Ident(s.clone())];
            (s, k)
        }
        1 => (format!("{n}"), vec![TokenKind::Number]),
        2 => {
            const PUNCTS: &[char] = &['.', ';', ',', '+', '=', '!', '(', ')'];
            let c = PUNCTS[n as usize % PUNCTS.len()];
            (c.to_string(), vec![TokenKind::Punct(c)])
        }
        3 => (format!("\"s{n}\""), vec![TokenKind::Literal]),
        4 => (format!("r#\"raw {n}\"#"), vec![TokenKind::Literal]),
        _ => (format!("'lt{n}"), vec![TokenKind::Lifetime]),
    }
}

/// Separator choice: layout and comments the lexer must treat as
/// invisible.
fn separator(kind: u8) -> &'static str {
    match kind {
        0 => " ",
        1 => "\n",
        2 => "\t",
        3 => " /* c */ ",
        4 => " // eol\n",
        _ => " /* a /* nested */ b */\n",
    }
}

proptest! {
    /// Joining fragments with whitespace/comments must produce
    /// exactly the concatenation of their token streams: comments and
    /// layout are invisible, and every token's (line, col) points at
    /// source inside the file, advancing monotonically.
    #[test]
    fn fragments_roundtrip_through_layout(
        frags in collection::vec((0u8..6, 0u64..1000), 0..12),
        seps in collection::vec(0u8..6, 0..12),
    ) {
        let mut src = String::new();
        let mut want: Vec<TokenKind> = Vec::new();
        for (i, (kind, n)) in frags.iter().enumerate() {
            let (text, toks) = fragment(*kind, *n);
            src.push_str(&text);
            want.extend(toks);
            src.push_str(seps.get(i).map(|s| separator(*s)).unwrap_or("\n"));
        }
        let got = tokenize(&src);
        let got_kinds: Vec<TokenKind> = got.iter().map(|t| t.kind.clone()).collect();
        prop_assert_eq!(&got_kinds, &want, "source: {src:?}");

        let lines: Vec<&str> = src.split('\n').collect();
        let mut prev = (0u32, 0u32);
        for t in &got {
            prop_assert!(
                (t.line, t.col) > prev,
                "non-monotonic position in {src:?}"
            );
            prev = (t.line, t.col);
            let line = lines.get(t.line as usize - 1).expect("line in file");
            prop_assert!(
                (t.col as usize - 1) < line.chars().count(),
                "col {} beyond line {:?}",
                t.col,
                line
            );
        }
    }

    /// The lexer must never panic and never emit positions outside
    /// the source, whatever bytes it is fed (printable ASCII soup —
    /// quotes, slashes, and hashes included, so string/comment state
    /// machines get stressed).
    #[test]
    fn arbitrary_input_never_panics(bytes in collection::vec(0x20u8..0x7f, 0..200)) {
        let src = String::from_utf8(bytes).expect("printable ascii");
        let toks = tokenize(&src);
        let line_count = src.split('\n').count() as u32;
        for t in &toks {
            prop_assert!(t.line >= 1 && t.line <= line_count, "line out of range");
            prop_assert!(t.col >= 1);
        }
    }
}
