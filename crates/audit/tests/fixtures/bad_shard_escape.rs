//! Fixture: deferred closures must not alias live sim-state.

fn borrows_env(world: &mut World) {
    let mut outbox = Vec::new();
    world.schedule_at(now, || outbox.push(1));
    drop(outbox);
}

fn moves_mut_borrow(world: &mut World) {
    let slot = &mut world.slot;
    world.spawn(move || slot.touch());
}

fn good_snapshot(world: &mut World) {
    let seq = world.seq;
    world.schedule_at(now, move || log(seq));
}

fn pokes_protocol_field(site: &mut SiteRuntime) {
    site.inbox_seq += 1;
}
