//! Known-good fixture: deterministic containers, hazards mentioned
//! only in comments/strings, and test-only unwraps — none of which
//! may produce findings.
//!
//! A HashMap in a doc comment is not a hazard, nor is Instant here.
use std::collections::BTreeMap;

pub struct Registry {
    entries: BTreeMap<u64, f64>,
}

impl Registry {
    pub fn describe() -> &'static str {
        "uses no HashMap, no Instant::now, no static mut, no thread_rng"
    }

    pub fn total(&self) -> f64 {
        // BTreeMap iteration is structural, so this sum is fine.
        self.entries.values().copied().sum()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let x: Option<u32> = Some(1);
        assert_eq!(x.unwrap(), 1);
    }
}
