// Fixture: sync primitives in sim-state library code. Every lock and
// atomic outside the sanctioned simcore::shard synchronizer must be
// flagged; #[cfg(test)] regions stay exempt.
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, RwLock};

struct Shared {
    state: Mutex<Vec<u32>>,
    flags: RwLock<u64>,
    done: AtomicBool,
}

fn poke(s: &Shared) {
    s.done.store(true, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use std::sync::Mutex;

    static LOCKED: Mutex<u8> = Mutex::new(0);
}
