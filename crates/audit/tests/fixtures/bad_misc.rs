//! Known-bad fixture: wall-clock, static-mut, unseeded-rand and
//! unwrap-lib hazards at positions the fixture tests pin down.
use std::time::Instant;

static mut EVENT_COUNT: u64 = 0;

pub fn stamp() -> u64 {
    let started = Instant::now();
    let mut rng = rand::thread_rng();
    started.elapsed().as_nanos().try_into().unwrap()
}

pub fn arm(en: &mut Engine<World>) {
    en.schedule_in(delay, Box::new(move |w, en| w.tick(en)));
}
