//! Fixture: inconsistent lock acquisition orders.

fn forward_order(&self) {
    let ga = self.alpha.lock();
    let gb = self.beta.lock();
    drop(gb);
    drop(ga);
}

fn reverse_order(&self) {
    let gb = self.beta.lock();
    let ga = self.alpha.lock();
    drop(ga);
    drop(gb);
}

fn indexed_pair(&self, i: usize, j: usize) {
    let gi = self.sites[i].lock();
    let gj = self.sites[j].lock();
    drop(gj);
    drop(gi);
}

fn sequential_is_fine(&self) {
    {
        let ga = self.alpha.lock();
        drop(ga);
    }
    {
        let gb = self.beta.lock();
        drop(gb);
    }
}
