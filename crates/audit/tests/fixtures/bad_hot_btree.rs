//! Trips `hot-btree-lookup`: ordered-container state declared in a
//! file listed under `[hot_paths]` in audit.toml.

use std::collections::{BTreeMap, BTreeSet};

pub struct RouteTable {
    routes: BTreeMap<u32, u32>,
    dirty: BTreeSet<u32>,
}

#[cfg(test)]
mod tests {
    // Test-only counts stay ordered for readable assertions; the rule
    // must not fire here even in a hot file.
    use std::collections::BTreeMap;

    fn counts() -> BTreeMap<u32, u32> {
        BTreeMap::new()
    }
}
