//! Fixture: values derived from hash-order iteration reaching
//! order-sensitive sinks.

fn schedules_in_hash_order(world: &mut World) {
    let peers: HashMap<u64, Peer> = build_peers();
    for (id, peer) in peers.iter() {
        world.schedule_after(peer.delay, id);
    }
}

fn records_in_hash_order(stats: &mut Stats) {
    let samples: HashSet<u64> = live_samples();
    let mut total = 0u64;
    for v in samples.iter() {
        total += v;
    }
    stats.counter_add(total);
}

fn sorted_first_is_fine(world: &mut World) {
    let order: Vec<u64> = sorted_ids();
    for id in &order {
        world.schedule_after(base_delay(), id);
    }
}
