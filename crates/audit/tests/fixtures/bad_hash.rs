//! Known-bad fixture: hash-container and float-accum hazards.
//! The fixture tests assert these exact line/column positions; keep
//! edits in sync with `fixtures_test.rs`.
use std::collections::HashMap;

pub struct Tracker {
    weights: HashMap<u64, f64>,
}

impl Tracker {
    pub fn total(&self) -> f64 {
        self.weights.values().copied().sum()
    }

    pub fn loop_total(&self) -> f64 {
        let mut acc = 0.0;
        for w in self.weights.values() {
            acc += *w;
        }
        acc
    }
}
