//! Fixture: allocation in the steady-state path of a hot file.

struct Router {
    name: String,
    scratch: Vec<u64>,
}

impl Router {
    fn new() -> Self {
        Router {
            name: String::new(),
            scratch: Vec::with_capacity(64),
        }
    }

    fn forward(&mut self, pkt: &Packet) -> u64 {
        let mut route = Vec::new();
        let tag = format!("{}:{}", pkt.src, pkt.dst);
        let copy = pkt.payload.to_vec();
        let label = self.name.clone();
        route.push(pkt.dst);
        tag.len() as u64 + copy.len() as u64 + label.len() as u64
    }
}
