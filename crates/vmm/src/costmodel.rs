//! The virtualization cost model.
//!
//! Calibration targets, all from the paper:
//!
//! * Table 1 — VM user-time overhead between ~1% (SPECseis, low
//!   memory pressure) and ~4% (SPECclimate, high pressure); VM
//!   system time ≈ 3× native.
//! * Figure 1 — slowdown under load stays ≤ ~10% on a dual-CPU host
//!   because world switches and trapped guest context switches cost
//!   tens of microseconds, not milliseconds.

use gridvm_host::TaskSpec;
use gridvm_simcore::time::SimDuration;
use gridvm_simcore::units::CpuWork;

/// Cost parameters of a classic trap-and-emulate VMM.
#[derive(Clone, Copy, Debug)]
pub struct VirtCostModel {
    /// Base user-mode slowdown with zero memory pressure (binary
    /// translation residue, timer virtualization).
    pub user_base_overhead: f64,
    /// Additional user-mode slowdown at full memory pressure
    /// (shadow page-table maintenance).
    pub user_pressure_overhead: f64,
    /// Native cost of one system call.
    pub syscall_native: SimDuration,
    /// Multiplier a trapped syscall pays under the VMM.
    pub sys_multiplier: f64,
    /// Native kernel CPU per 8 KiB file-I/O block.
    pub io_kernel_native_per_block: SimDuration,
    /// CPU burned per world switch (host preempts the VMM).
    pub world_switch: SimDuration,
    /// Extra CPU per guest-internal context switch (privileged
    /// instructions trapped and emulated).
    pub guest_ctxsw: SimDuration,
    /// User-level proxy CPU per 8 KiB block for PVFS remote I/O.
    pub pvfs_client_per_block: SimDuration,
    /// One-time VMM process/monitor setup when powering on a VM.
    pub vm_create: SimDuration,
    /// Monitor setup when restoring (no device cold-plug).
    pub vm_restore_setup: SimDuration,
}

impl Default for VirtCostModel {
    /// Values fitted to Table 1 / Figure 1 (see module docs).
    fn default() -> Self {
        VirtCostModel {
            user_base_overhead: 0.005,
            user_pressure_overhead: 0.044,
            syscall_native: SimDuration::from_micros(5),
            sys_multiplier: 3.16,
            io_kernel_native_per_block: SimDuration::from_micros(10),
            world_switch: SimDuration::from_micros(60),
            guest_ctxsw: SimDuration::from_micros(25),
            pvfs_client_per_block: SimDuration::from_micros(93),
            vm_create: SimDuration::from_secs(3),
            vm_restore_setup: SimDuration::from_millis(500),
        }
    }
}

impl VirtCostModel {
    /// A cost model with *VM assists* applied — the paper's note that
    /// "previous experience with successful VMM architectures has
    /// shown that such overheads can be made smaller with
    /// implementation optimizations. ... IBM's line of virtual
    /// machines has evolved to implement performance-enhancing
    /// techniques such as VM assists and in-memory network
    /// hyper-sockets".
    ///
    /// Assists cut the trap-and-emulate multiplier (privileged-
    /// operation handling partially in microcode/host fast paths),
    /// halve the world-switch and guest-context-switch costs, and
    /// reduce the shadow-paging tax.
    pub fn with_assists(self) -> Self {
        VirtCostModel {
            user_base_overhead: self.user_base_overhead * 0.6,
            user_pressure_overhead: self.user_pressure_overhead * 0.45,
            sys_multiplier: 1.0 + (self.sys_multiplier - 1.0) * 0.4,
            world_switch: self.world_switch.mul_f64(0.5),
            guest_ctxsw: self.guest_ctxsw.mul_f64(0.5),
            ..self
        }
    }

    /// The user-mode work multiplier for a guest with the given
    /// memory pressure.
    ///
    /// # Panics
    ///
    /// Panics if `memory_pressure` is outside `[0, 1]`.
    pub fn user_multiplier(&self, memory_pressure: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&memory_pressure),
            "memory pressure {memory_pressure} outside [0,1]"
        );
        1.0 + self.user_base_overhead + self.user_pressure_overhead * memory_pressure
    }

    /// Cost of one syscall inside the VM.
    pub fn syscall_vm(&self) -> SimDuration {
        self.syscall_native.mul_f64(self.sys_multiplier)
    }

    /// Kernel CPU per I/O block inside the VM.
    pub fn io_kernel_vm_per_block(&self) -> SimDuration {
        self.io_kernel_native_per_block.mul_f64(self.sys_multiplier)
    }

    /// The per-reschedule overhead a VM-hosted task pays on the host:
    /// a world switch plus one trapped guest context switch.
    pub fn switch_overhead(&self) -> SimDuration {
        self.world_switch + self.guest_ctxsw
    }

    /// Builds the host-level [`TaskSpec`] for a compute task of
    /// `work` running inside a VM with the given memory pressure
    /// (Figure 1's "test task on the virtual machine").
    pub fn guest_task(&self, work: CpuWork, memory_pressure: f64) -> TaskSpec {
        TaskSpec::compute(work)
            .with_work_multiplier(self.user_multiplier(memory_pressure))
            .with_switch_overhead(self.switch_overhead())
    }

    /// The host-level [`TaskSpec`] for the same task running
    /// directly on the physical machine.
    pub fn native_task(&self, work: CpuWork) -> TaskSpec {
        TaskSpec::compute(work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_multiplier_brackets_table1() {
        let m = VirtCostModel::default();
        let seis = m.user_multiplier(0.11);
        let climate = m.user_multiplier(0.80);
        // Table 1: SPECseis user 16557/16395 = 1.0099,
        //          SPECclimate 9679/9304 = 1.0403.
        assert!((seis - 1.0099).abs() < 0.002, "seis multiplier {seis}");
        assert!(
            (climate - 1.0403).abs() < 0.003,
            "climate multiplier {climate}"
        );
    }

    #[test]
    fn sys_multiplier_triples_kernel_costs() {
        let m = VirtCostModel::default();
        assert!(m.syscall_vm() > m.syscall_native.mul_f64(3.0));
        assert!(m.io_kernel_vm_per_block() > m.io_kernel_native_per_block.mul_f64(3.0));
    }

    #[test]
    fn switch_overhead_is_tens_of_microseconds() {
        let m = VirtCostModel::default();
        let s = m.switch_overhead();
        assert!(s >= SimDuration::from_micros(20));
        assert!(
            s <= SimDuration::from_micros(500),
            "must stay far below a 10 ms quantum"
        );
    }

    #[test]
    fn guest_task_composes_costs() {
        let m = VirtCostModel::default();
        let g = m.guest_task(CpuWork::from_cycles(1000), 0.5);
        assert!(g.work_multiplier > 1.0);
        assert_eq!(g.switch_overhead, m.switch_overhead());
        let n = m.native_task(CpuWork::from_cycles(1000));
        assert!((n.work_multiplier - 1.0).abs() < f64::EPSILON);
        assert!(n.switch_overhead.is_zero());
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn pressure_is_validated() {
        let _ = VirtCostModel::default().user_multiplier(1.5);
    }

    #[test]
    fn assists_reduce_every_virtualization_cost() {
        let base = VirtCostModel::default();
        let assisted = VirtCostModel::default().with_assists();
        assert!(assisted.user_multiplier(0.8) < base.user_multiplier(0.8));
        assert!(assisted.user_multiplier(0.8) > 1.0, "still not free");
        assert!(assisted.syscall_vm() < base.syscall_vm());
        assert!(
            assisted.syscall_vm() > assisted.syscall_native,
            "traps still cost more than native"
        );
        assert!(assisted.switch_overhead() < base.switch_overhead());
        // Native costs are untouched — assists only help the VMM path.
        assert_eq!(assisted.syscall_native, base.syscall_native);
    }
}
