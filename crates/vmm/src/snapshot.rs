//! Suspend/restore state sizing: "a running virtual machine can be
//! suspended and resumed, providing a mechanism to migrate a running
//! machine from resource to resource."
//!
//! A suspend image is the guest memory plus device state; restoring
//! reads it back and re-arms the monitor. The actual transfer timing
//! is composed by the caller (local disk, NFS mount, or a migration
//! pipe); this module owns the *what*, not the *how fast*.

use gridvm_simcore::units::ByteSize;

use crate::machine::VmConfig;

/// Device/monitor state beyond guest memory in a suspend image
/// (VMware-era: device checkpoints, a few hundred KiB).
pub const DEVICE_STATE: ByteSize = ByteSize::from_kib(384);

/// A suspend (hibernation) image description.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SuspendImage {
    /// Guest memory captured.
    pub memory: ByteSize,
    /// Device and monitor state.
    pub device_state: ByteSize,
}

impl SuspendImage {
    /// The suspend image a VM of this configuration produces.
    pub fn for_config(config: &VmConfig) -> Self {
        SuspendImage {
            memory: config.memory,
            device_state: DEVICE_STATE,
        }
    }

    /// Total bytes that must be written on suspend / read on
    /// restore.
    pub fn total(&self) -> ByteSize {
        self.memory + self.device_state
    }

    /// Number of I/O blocks of the given size the image occupies.
    pub fn blocks(&self, block: ByteSize) -> u64 {
        self.total().blocks(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::VmConfig;

    #[test]
    fn paper_guest_suspend_image_is_memory_plus_device_state() {
        let img = SuspendImage::for_config(&VmConfig::paper_guest("rh72"));
        assert_eq!(img.memory, ByteSize::from_mib(128));
        assert_eq!(img.total(), ByteSize::from_mib(128) + DEVICE_STATE);
    }

    #[test]
    fn block_count_rounds_up() {
        let img = SuspendImage {
            memory: ByteSize::from_bytes(10_000),
            device_state: ByteSize::from_bytes(1),
        };
        assert_eq!(img.blocks(ByteSize::from_kib(8)), 2);
    }

    #[test]
    fn bigger_vms_produce_bigger_images() {
        let small = SuspendImage::for_config(&VmConfig::paper_guest("a"));
        let big = SuspendImage::for_config(&VmConfig {
            memory: ByteSize::from_mib(512),
            ..VmConfig::paper_guest("b")
        });
        assert!(big.total() > small.total());
    }
}
