//! # gridvm-vmm
//!
//! The classic virtual machine monitor model: what VMware
//! Workstation 3.0a is to the paper, this crate is to the simulation.
//!
//! A classic (ISA-level, same-ISA) VMM executes user-mode guest code
//! directly on the hardware and traps privileged operations. The
//! performance consequences — the whole subject of the paper's
//! Section 2.3 — are captured by [`costmodel::VirtCostModel`]:
//!
//! * user-mode work runs at native speed save a small shadow-paging
//!   tax that grows with the guest's virtual-memory pressure;
//! * system calls, guest context switches and I/O pay
//!   trap-and-emulate multipliers;
//! * *world switches* (VMM preemption by other host processes) tax a
//!   VM whenever the host schedules around it.
//!
//! Other modules:
//!
//! * [`machine`] — VM configuration and the lifecycle state machine
//!   (powered-off → staging → booting/restoring → running →
//!   suspended/migrating → terminated).
//! * [`boot`] — the cold-boot cost model: guest kernel CPU work plus
//!   the scattered boot-working-set reads whose cold/warm split
//!   drives Table 2.
//! * [`exec`] — running an [`AppProfile`](gridvm_workloads::AppProfile)
//!   inside a VM against a pluggable [`exec::GuestStorage`]
//!   (local virtual disk or a grid-virtual-file-system mount),
//!   yielding the user/sys/wall decomposition of Table 1.
//! * [`snapshot`] — suspend/restore state sizing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boot;
pub mod costmodel;
pub mod exec;
pub mod machine;
pub mod snapshot;

pub use costmodel::VirtCostModel;
pub use exec::{GuestRunReport, GuestStorage, LocalDiskStorage};
pub use machine::{DiskMode, Vm, VmConfig, VmError, VmState};
