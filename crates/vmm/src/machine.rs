//! VM configuration and the lifecycle state machine.
//!
//! The paper's life cycle (Section 4): instantiate from a pre-boot
//! (cold) or post-boot (warm) image, run, then "shutdown, hibernate,
//! restore, or migrate the virtual machine at any time". The state
//! machine here enforces that only legal transitions happen; the
//! orchestration timing lives in `gridvm-core`.

use std::fmt;

use gridvm_simcore::time::SimTime;
use gridvm_simcore::units::ByteSize;
use gridvm_storage::cow::CowOverlay;

/// Persistent vs non-persistent virtual disk (Table 2's two storage
/// modes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum DiskMode {
    /// The VM owns a private copy of the disk image, created by an
    /// explicit whole-image copy before startup.
    Persistent,
    /// The VM sees a copy-on-write view of a shared base image;
    /// modifications land in a diff file and are discarded at
    /// shutdown.
    #[default]
    NonPersistent,
}

impl fmt::Display for DiskMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskMode::Persistent => f.write_str("persistent"),
            DiskMode::NonPersistent => f.write_str("non-persistent"),
        }
    }
}

/// Static configuration of a VM instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VmConfig {
    /// Image name in the catalog.
    pub image: String,
    /// Guest memory size (also the suspend-image size).
    pub memory: ByteSize,
    /// Virtual CPU count.
    pub vcpus: usize,
    /// Disk mode.
    pub disk_mode: DiskMode,
}

impl VmConfig {
    /// The paper's experimental guest: 128 MB of memory, one VCPU,
    /// non-persistent disk over the named image.
    pub fn paper_guest(image: impl Into<String>) -> Self {
        VmConfig {
            image: image.into(),
            memory: ByteSize::from_mib(128),
            vcpus: 1,
            disk_mode: DiskMode::NonPersistent,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on zero memory or zero VCPUs.
    pub fn validated(self) -> Self {
        assert!(!self.memory.is_zero(), "VM with no memory");
        assert!(self.vcpus > 0, "VM with no VCPUs");
        self
    }
}

/// Lifecycle states of a VM.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VmState {
    /// Defined but not started.
    PoweredOff,
    /// Image state being staged/attached.
    Staging,
    /// Guest OS cold-booting.
    Booting,
    /// Warm state being loaded.
    Restoring,
    /// Guest running.
    Running,
    /// Memory being written out.
    Suspending,
    /// Hibernated to an image.
    Suspended,
    /// In transit between hosts.
    Migrating,
    /// Life cycle over ("the life cycle of a virtual machine ends
    /// when the image is removed from permanent storage").
    Terminated,
}

impl fmt::Display for VmState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VmState::PoweredOff => "powered-off",
            VmState::Staging => "staging",
            VmState::Booting => "booting",
            VmState::Restoring => "restoring",
            VmState::Running => "running",
            VmState::Suspending => "suspending",
            VmState::Suspended => "suspended",
            VmState::Migrating => "migrating",
            VmState::Terminated => "terminated",
        };
        f.write_str(s)
    }
}

/// Errors from illegal lifecycle transitions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VmError {
    /// The state the VM was in.
    pub from: VmState,
    /// The transition that was attempted.
    pub attempted: &'static str,
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot {} from state {}", self.attempted, self.from)
    }
}

impl std::error::Error for VmError {}

/// A VM instance: configuration, state machine, and its
/// copy-on-write disk when non-persistent.
#[derive(Debug)]
pub struct Vm {
    config: VmConfig,
    state: VmState,
    state_since: SimTime,
    disk: Option<CowOverlay>,
    transitions: Vec<(SimTime, VmState)>,
}

impl Vm {
    /// Defines a VM in the powered-off state.
    pub fn new(config: VmConfig) -> Self {
        Vm {
            config: config.validated(),
            state: VmState::PoweredOff,
            state_since: SimTime::ZERO,
            disk: None,
            transitions: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &VmConfig {
        &self.config
    }

    /// Current lifecycle state.
    pub fn state(&self) -> VmState {
        self.state
    }

    /// When the current state was entered.
    pub fn state_since(&self) -> SimTime {
        self.state_since
    }

    /// The full transition history (time, new state).
    pub fn history(&self) -> &[(SimTime, VmState)] {
        &self.transitions
    }

    /// The VM's copy-on-write disk, once attached.
    pub fn disk(&self) -> Option<&CowOverlay> {
        self.disk.as_ref()
    }

    /// Mutable access to the attached disk.
    pub fn disk_mut(&mut self) -> Option<&mut CowOverlay> {
        self.disk.as_mut()
    }

    /// Attaches the (COW) disk during staging.
    pub fn attach_disk(&mut self, disk: CowOverlay) {
        self.disk = Some(disk);
    }

    fn transition(
        &mut self,
        now: SimTime,
        allowed_from: &[VmState],
        to: VmState,
        attempted: &'static str,
    ) -> Result<(), VmError> {
        if !allowed_from.contains(&self.state) {
            return Err(VmError {
                from: self.state,
                attempted,
            });
        }
        self.state = to;
        self.state_since = now;
        self.transitions.push((now, to));
        Ok(())
    }

    /// Begins staging VM state onto the compute server.
    ///
    /// # Errors
    ///
    /// Unless powered off or suspended (re-instantiation).
    pub fn begin_staging(&mut self, now: SimTime) -> Result<(), VmError> {
        self.transition(
            now,
            &[VmState::PoweredOff, VmState::Suspended],
            VmState::Staging,
            "begin staging",
        )
    }

    /// Starts a cold boot.
    ///
    /// # Errors
    ///
    /// Unless staging completed.
    pub fn begin_boot(&mut self, now: SimTime) -> Result<(), VmError> {
        self.transition(now, &[VmState::Staging], VmState::Booting, "boot")
    }

    /// Starts restoring warm state.
    ///
    /// # Errors
    ///
    /// Unless staging completed.
    pub fn begin_restore(&mut self, now: SimTime) -> Result<(), VmError> {
        self.transition(now, &[VmState::Staging], VmState::Restoring, "restore")
    }

    /// Marks the guest up.
    ///
    /// # Errors
    ///
    /// Unless booting, restoring, or arriving from migration.
    pub fn mark_running(&mut self, now: SimTime) -> Result<(), VmError> {
        self.transition(
            now,
            &[VmState::Booting, VmState::Restoring, VmState::Migrating],
            VmState::Running,
            "mark running",
        )
    }

    /// Begins suspending (hibernate).
    ///
    /// # Errors
    ///
    /// Unless running.
    pub fn begin_suspend(&mut self, now: SimTime) -> Result<(), VmError> {
        self.transition(now, &[VmState::Running], VmState::Suspending, "suspend")
    }

    /// Completes the suspend.
    ///
    /// # Errors
    ///
    /// Unless suspending.
    pub fn mark_suspended(&mut self, now: SimTime) -> Result<(), VmError> {
        self.transition(
            now,
            &[VmState::Suspending],
            VmState::Suspended,
            "finish suspend",
        )
    }

    /// Begins migrating a running or suspended VM.
    ///
    /// # Errors
    ///
    /// Unless running or suspended.
    pub fn begin_migration(&mut self, now: SimTime) -> Result<(), VmError> {
        self.transition(
            now,
            &[VmState::Running, VmState::Suspended],
            VmState::Migrating,
            "migrate",
        )
    }

    /// Ends the life cycle. Discards a non-persistent diff.
    ///
    /// # Errors
    ///
    /// If already terminated.
    pub fn terminate(&mut self, now: SimTime) -> Result<(), VmError> {
        if self.state == VmState::Terminated {
            return Err(VmError {
                from: self.state,
                attempted: "terminate",
            });
        }
        if self.config.disk_mode == DiskMode::NonPersistent {
            if let Some(d) = &mut self.disk {
                d.discard();
            }
        }
        let s = self.state;
        let _ = s;
        self.state = VmState::Terminated;
        self.state_since = now;
        self.transitions.push((now, VmState::Terminated));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridvm_storage::image::VmImage;

    fn vm() -> Vm {
        Vm::new(VmConfig::paper_guest("rh72"))
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn paper_guest_defaults() {
        let c = VmConfig::paper_guest("rh72");
        assert_eq!(c.memory, ByteSize::from_mib(128));
        assert_eq!(c.disk_mode, DiskMode::NonPersistent);
        assert_eq!(c.vcpus, 1);
    }

    #[test]
    fn happy_path_boot_lifecycle() {
        let mut vm = vm();
        assert_eq!(vm.state(), VmState::PoweredOff);
        vm.begin_staging(t(0)).unwrap();
        vm.begin_boot(t(1)).unwrap();
        vm.mark_running(t(2)).unwrap();
        vm.begin_suspend(t(10)).unwrap();
        vm.mark_suspended(t(11)).unwrap();
        vm.begin_staging(t(20)).unwrap(); // re-instantiation elsewhere
        vm.begin_restore(t(21)).unwrap();
        vm.mark_running(t(22)).unwrap();
        vm.terminate(t(30)).unwrap();
        assert_eq!(vm.state(), VmState::Terminated);
        assert_eq!(vm.history().len(), 9);
        assert_eq!(vm.state_since(), t(30));
    }

    #[test]
    fn illegal_transitions_are_rejected() {
        let mut vm = vm();
        let err = vm.begin_boot(t(0)).unwrap_err();
        assert_eq!(err.from, VmState::PoweredOff);
        assert!(err.to_string().contains("cannot boot"));
        assert!(vm.mark_running(t(0)).is_err());
        assert!(vm.begin_suspend(t(0)).is_err());
        vm.begin_staging(t(0)).unwrap();
        assert!(vm.begin_staging(t(1)).is_err(), "already staging");
    }

    #[test]
    fn migration_only_from_running_or_suspended() {
        let mut vm = vm();
        assert!(vm.begin_migration(t(0)).is_err());
        vm.begin_staging(t(0)).unwrap();
        vm.begin_boot(t(1)).unwrap();
        vm.mark_running(t(2)).unwrap();
        vm.begin_migration(t(3)).unwrap();
        vm.mark_running(t(4)).unwrap(); // arrives at the new host
        assert_eq!(vm.state(), VmState::Running);
    }

    #[test]
    fn terminate_discards_nonpersistent_diff() {
        let mut vm = vm();
        let image = VmImage::redhat_guest("rh72");
        let mut overlay = CowOverlay::new(image.base_store());
        use gridvm_storage::block::{BlockAddr, BlockStore};
        overlay
            .write(BlockAddr(0), bytes::Bytes::from(vec![1u8; 4096]))
            .unwrap();
        vm.attach_disk(overlay);
        vm.begin_staging(t(0)).unwrap();
        vm.begin_boot(t(1)).unwrap();
        vm.mark_running(t(2)).unwrap();
        vm.terminate(t(3)).unwrap();
        assert_eq!(vm.disk().unwrap().diff_blocks(), 0, "diff discarded");
    }

    #[test]
    fn double_terminate_is_an_error() {
        let mut vm = vm();
        vm.terminate(t(0)).unwrap();
        assert!(vm.terminate(t(1)).is_err());
    }

    #[test]
    #[should_panic(expected = "no memory")]
    fn zero_memory_config_panics() {
        let _ = Vm::new(VmConfig {
            image: "x".into(),
            memory: ByteSize::ZERO,
            vcpus: 1,
            disk_mode: DiskMode::NonPersistent,
        });
    }
}
