//! The cold-boot cost model.
//!
//! A Red Hat guest boot does two things that matter to Table 2:
//! burn guest-kernel/init CPU, and read the *boot working set* —
//! tens of MB of kernel, libraries and service binaries scattered
//! across the disk image in short runs. On a cold disk those seeks
//! dominate (~45 s); after an explicit image copy the blocks sit in
//! the host buffer cache and the same reads are nearly free — which
//! is exactly why Table 2's persistent rows differ from its
//! non-persistent ones by roughly the copy time alone.

use gridvm_simcore::rng::SimRng;
use gridvm_simcore::time::SimDuration;
use gridvm_storage::block::BlockAddr;
use gridvm_storage::image::VmImage;

/// The boot cost profile of a guest OS.
#[derive(Clone, Copy, Debug)]
pub struct BootProfile {
    /// Guest CPU time consumed by kernel init and services (fitted
    /// to Table 2: persistent-reboot minus copy/middleware ≈ 16 s).
    pub cpu: SimDuration,
    /// Average run length (contiguous blocks) of boot reads.
    pub avg_run_blocks: u64,
}

impl Default for BootProfile {
    fn default() -> Self {
        BootProfile {
            cpu: SimDuration::from_secs(16),
            avg_run_blocks: 3,
        }
    }
}

impl BootProfile {
    /// Validates the profile.
    ///
    /// # Panics
    ///
    /// Panics on a zero run length.
    pub fn validated(self) -> Self {
        assert!(self.avg_run_blocks > 0, "zero boot run length");
        self
    }
}

/// The deterministic scattered read pattern of one cold boot of
/// `image`: a list of `(start, len)` runs covering the boot working
/// set, spread across the image. Deterministic per image (seeded by
/// the image's content seed) so repeated boots read the same blocks
/// — a warm cache then absorbs them.
pub fn boot_read_runs(image: &VmImage, profile: &BootProfile) -> Vec<(BlockAddr, u64)> {
    let profile = profile.validated();
    let total_blocks = image.boot_working_set_blocks;
    let disk_blocks = image.disk_blocks();
    let mut rng = SimRng::seed_from(image.content_seed ^ 0xB007_B007);
    let mut runs = Vec::new();
    let mut covered = 0u64;
    while covered < total_blocks {
        // Run lengths 1..=2*avg keep the mean at avg.
        let len = rng
            .next_in(1, profile.avg_run_blocks * 2 - 1)
            .min(total_blocks - covered);
        let start = rng.next_below(disk_blocks.saturating_sub(len).max(1));
        runs.push((BlockAddr(start), len));
        covered += len;
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image() -> VmImage {
        VmImage::redhat_guest("rh72")
    }

    #[test]
    fn runs_cover_the_working_set_exactly() {
        let img = image();
        let runs = boot_read_runs(&img, &BootProfile::default());
        let total: u64 = runs.iter().map(|(_, l)| l).sum();
        assert_eq!(total, img.boot_working_set_blocks);
    }

    #[test]
    fn runs_are_deterministic_per_image() {
        let img = image();
        let a = boot_read_runs(&img, &BootProfile::default());
        let b = boot_read_runs(&img, &BootProfile::default());
        assert_eq!(a, b, "same image boots read the same blocks");
    }

    #[test]
    fn runs_stay_inside_the_disk() {
        let img = image();
        for (start, len) in boot_read_runs(&img, &BootProfile::default()) {
            assert!(start.0 + len <= img.disk_blocks());
            assert!(len >= 1);
        }
    }

    #[test]
    fn average_run_length_matches_profile() {
        let img = image();
        let profile = BootProfile {
            avg_run_blocks: 3,
            ..BootProfile::default()
        };
        let runs = boot_read_runs(&img, &profile);
        let mean = img.boot_working_set_blocks as f64 / runs.len() as f64;
        assert!((2.0..4.0).contains(&mean), "mean run length {mean}");
    }

    #[test]
    fn cold_boot_io_on_ide_is_tens_of_seconds() {
        // Anchor for Table 2: replaying the boot pattern against a
        // cold IDE disk costs ~40-50 s; warm, it is < 1 s.
        use gridvm_simcore::time::SimTime;
        use gridvm_storage::disk::{AccessKind, DiskModel, DiskProfile};
        let img = image();
        let runs = boot_read_runs(&img, &BootProfile::default());
        let mut disk = DiskModel::new(DiskProfile::ide_2003());
        let mut t = SimTime::ZERO;
        for (start, len) in &runs {
            t = disk.access_run(t, *start, *len, AccessKind::Read).finish;
        }
        let cold = t.as_secs_f64();
        assert!((30.0..60.0).contains(&cold), "cold boot I/O {cold}s");
        let t0 = t;
        for (start, len) in &runs {
            t = disk.access_run(t, *start, *len, AccessKind::Read).finish;
        }
        let warm = t.duration_since(t0).as_secs_f64();
        assert!(warm < 1.0, "warm boot I/O {warm}s");
    }
}
