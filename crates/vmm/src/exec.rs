//! Running an application profile inside (or outside) a VM.
//!
//! Produces the `user / sys / wall` decomposition Table 1 reports:
//!
//! * **user** — the profile's work, inflated by the VMM's
//!   shadow-paging multiplier when virtualized;
//! * **sys** — syscall and per-block I/O kernel time (×~3 when
//!   virtualized) plus, for remote grid-virtual-file-system storage,
//!   the user-level proxy crossing per block;
//! * **wall** — user + sys plus any I/O stall the storage cannot
//!   overlap with computation (sequential scientific codes overlap
//!   almost fully thanks to OS read-ahead and the PVFS prefetcher).

use gridvm_simcore::metrics::Counter;
use gridvm_simcore::rng::SimRng;
use gridvm_simcore::time::{SimDuration, SimTime};
use gridvm_simcore::units::ByteSize;
use gridvm_storage::block::BlockAddr;
use gridvm_storage::disk::{AccessKind, DiskModel};
use gridvm_workloads::{AppProfile, IoPattern};

use crate::costmodel::VirtCostModel;

/// Guest executions under trap-and-emulate (hot: once per app run).
static GUEST_RUNS: Counter = Counter::new("vmm.guest_runs");
/// Traps taken by the monitor (syscalls + I/O blocks).
static TRAPS: Counter = Counter::new("vmm.traps");

/// The I/O unit of the execution model (matches the NFS transfer
/// size).
pub const IO_BLOCK: ByteSize = ByteSize::from_kib(8);

/// Whether the application runs on the physical machine or inside a
/// VM.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// Directly on the host OS.
    Native,
    /// Inside a classic VM.
    Virtualized,
}

/// Storage a guest's file I/O lands on: the local virtual disk, or a
/// mount of a grid virtual file system (adapter implemented in
/// `gridvm-core` to keep this crate independent of the VFS stack).
pub trait GuestStorage {
    /// Performs a sequential run of `count` I/O blocks starting at
    /// `start`, beginning at `now`; returns the completion time.
    fn io_run(&mut self, now: SimTime, start: BlockAddr, count: u64, write: bool) -> SimTime;

    /// Client-side CPU charged per block beyond guest-kernel costs
    /// (zero for a local disk; the proxy crossing for PVFS).
    fn client_cpu_per_block(&self) -> SimDuration;

    /// Label for reports (e.g. `"local disk"`, `"PVFS"`).
    fn label(&self) -> &str;
}

/// [`GuestStorage`] over a local [`DiskModel`].
#[derive(Debug)]
pub struct LocalDiskStorage<'a> {
    disk: &'a mut DiskModel,
}

impl<'a> LocalDiskStorage<'a> {
    /// Wraps a disk.
    pub fn new(disk: &'a mut DiskModel) -> Self {
        LocalDiskStorage { disk }
    }
}

impl GuestStorage for LocalDiskStorage<'_> {
    fn io_run(&mut self, now: SimTime, start: BlockAddr, count: u64, write: bool) -> SimTime {
        // One 8 KiB I/O block = N disk blocks.
        let per_io = IO_BLOCK.as_u64() / self.disk.profile().block_size.as_u64().max(1);
        let kind = if write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        self.disk
            .access_run(now, BlockAddr(start.0 * per_io), count * per_io, kind)
            .finish
    }

    fn client_cpu_per_block(&self) -> SimDuration {
        SimDuration::ZERO
    }

    fn label(&self) -> &str {
        "local disk"
    }
}

/// The outcome of one application run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GuestRunReport {
    /// User-mode CPU time.
    pub user: SimDuration,
    /// System (kernel + proxy) CPU time.
    pub sys: SimDuration,
    /// Wall-clock I/O replay time (before overlap accounting).
    pub io_wall: SimDuration,
    /// Total elapsed time.
    pub wall: SimDuration,
}

impl GuestRunReport {
    /// `user + sys`, the figure Table 1 totals.
    pub fn cpu_total(&self) -> SimDuration {
        self.user + self.sys
    }

    /// Overhead of this run relative to a baseline run, as a
    /// fraction (Table 1's rightmost column).
    ///
    /// # Panics
    ///
    /// Panics if the baseline has zero CPU time.
    pub fn overhead_vs(&self, baseline: &GuestRunReport) -> f64 {
        let b = baseline.cpu_total().as_secs_f64();
        assert!(b > 0.0, "zero-time baseline");
        self.cpu_total().as_secs_f64() / b - 1.0
    }
}

/// Executes `app` at `hz` in the given mode against `storage`.
///
/// The run is deterministic given the profile and seed: the random
/// I/O pattern derives from `rng`.
pub fn run_app(
    app: &AppProfile,
    mode: ExecMode,
    model: &VirtCostModel,
    storage: &mut dyn GuestStorage,
    hz: f64,
    now: SimTime,
    rng: &mut SimRng,
) -> GuestRunReport {
    // --- CPU accounting -------------------------------------------------
    let user = match mode {
        ExecMode::Native => app.user_work().at_rate(hz),
        ExecMode::Virtualized => app
            .user_work()
            .at_rate(hz)
            .mul_f64(model.user_multiplier(app.memory_pressure())),
    };
    let io_blocks = app.io_bytes().blocks(IO_BLOCK);
    let (syscall_cost, io_kernel_cost) = match mode {
        ExecMode::Native => (model.syscall_native, model.io_kernel_native_per_block),
        ExecMode::Virtualized => (model.syscall_vm(), model.io_kernel_vm_per_block()),
    };
    let mut sys = syscall_cost * app.syscalls() + io_kernel_cost * io_blocks;
    sys += storage.client_cpu_per_block() * io_blocks;
    if mode == ExecMode::Virtualized {
        GUEST_RUNS.add(1);
        // Every syscall and every I/O block traps into the monitor
        // under trap-and-emulate.
        TRAPS.add(app.syscalls() + io_blocks);
    }

    // --- I/O replay ------------------------------------------------------
    let read_blocks = app.read_bytes().blocks(IO_BLOCK);
    let write_blocks = app.write_bytes().blocks(IO_BLOCK);
    let mut t = now;
    match app.io_pattern() {
        IoPattern::Sequential => {
            // Stream reads then writes in 64-block (512 KiB) runs.
            const RUN: u64 = 64;
            let mut cursor = 0u64;
            while cursor < read_blocks {
                let len = RUN.min(read_blocks - cursor);
                t = storage.io_run(t, BlockAddr(cursor), len, false);
                cursor += len;
            }
            let mut wcursor = 0u64;
            while wcursor < write_blocks {
                let len = RUN.min(write_blocks - wcursor);
                // Writes land beyond the read region.
                t = storage.io_run(t, BlockAddr(read_blocks + wcursor), len, true);
                wcursor += len;
            }
        }
        IoPattern::Random => {
            let span = (read_blocks + write_blocks).max(1) * 4;
            for _ in 0..read_blocks {
                t = storage.io_run(t, BlockAddr(rng.next_below(span)), 1, false);
            }
            for _ in 0..write_blocks {
                t = storage.io_run(t, BlockAddr(rng.next_below(span)), 1, true);
            }
        }
    }
    let io_wall = t.duration_since(now);

    // --- Overlap ----------------------------------------------------------
    // Read-ahead (kernel and PVFS prefetcher) overlaps streaming I/O
    // with computation; only I/O beyond the compute time stalls the
    // application.
    let stall = io_wall.saturating_sub(user);
    let wall = user + sys + stall;
    GuestRunReport {
        user,
        sys,
        io_wall,
        wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridvm_simcore::units::CpuWork;
    use gridvm_storage::disk::DiskProfile;
    use gridvm_workloads::spec;

    fn disk() -> DiskModel {
        DiskModel::new(DiskProfile::ide_2003())
    }

    fn run(app: &AppProfile, mode: ExecMode) -> GuestRunReport {
        let mut d = disk();
        let mut storage = LocalDiskStorage::new(&mut d);
        run_app(
            app,
            mode,
            &VirtCostModel::default(),
            &mut storage,
            spec::MACRO_CLOCK_HZ,
            SimTime::ZERO,
            &mut SimRng::seed_from(1),
        )
    }

    #[test]
    fn specseis_native_matches_table1() {
        let r = run(&spec::specseis(), ExecMode::Native);
        let user = r.user.as_secs_f64();
        let sys = r.sys.as_secs_f64();
        assert!((user - 16_395.0).abs() < 5.0, "seis native user {user}");
        assert!((sys - 19.0).abs() < 4.0, "seis native sys {sys}");
    }

    #[test]
    fn specseis_vm_overhead_is_about_one_percent() {
        let native = run(&spec::specseis(), ExecMode::Native);
        let vm = run(&spec::specseis(), ExecMode::Virtualized);
        let overhead = vm.overhead_vs(&native);
        assert!(
            (0.005..0.025).contains(&overhead),
            "seis VM overhead {overhead} (paper: 1.2%)"
        );
        let sys = vm.sys.as_secs_f64();
        assert!((40.0..80.0).contains(&sys), "seis VM sys {sys} (paper: 60)");
    }

    #[test]
    fn specclimate_vm_overhead_is_about_four_percent() {
        let native = run(&spec::specclimate(), ExecMode::Native);
        let vm = run(&spec::specclimate(), ExecMode::Virtualized);
        let overhead = vm.overhead_vs(&native);
        assert!(
            (0.03..0.05).contains(&overhead),
            "climate VM overhead {overhead} (paper: 4.0%)"
        );
        assert!((native.sys.as_secs_f64() - 3.0).abs() < 2.0);
    }

    #[test]
    fn io_overlaps_with_compute_for_cpu_bound_apps() {
        let r = run(&spec::specseis(), ExecMode::Virtualized);
        // SPECseis reads 7+ GiB but computes for hours: no stall.
        assert_eq!(r.wall, r.user + r.sys, "io fully overlapped");
        assert!(r.io_wall > SimDuration::from_secs(100));
    }

    #[test]
    fn io_bound_app_stalls() {
        // Tiny compute, lots of random I/O on a slow disk.
        let app = AppProfile::new("io-hog", CpuWork::from_cycles(1000))
            .with_reads(ByteSize::from_mib(64), IoPattern::Random)
            .with_syscalls(100);
        let r = run(&app, ExecMode::Native);
        assert!(r.wall > r.cpu_total(), "random I/O cannot hide");
        assert!(r.io_wall > SimDuration::from_secs(10));
    }

    #[test]
    fn virtualized_sys_time_exceeds_native() {
        let app =
            AppProfile::new("sys-heavy", CpuWork::from_cycles(1_000_000)).with_syscalls(100_000);
        let n = run(&app, ExecMode::Native);
        let v = run(&app, ExecMode::Virtualized);
        let ratio = v.sys.as_secs_f64() / n.sys.as_secs_f64();
        assert!((2.8..3.6).contains(&ratio), "sys ratio {ratio}");
    }

    #[test]
    fn deterministic_given_seed() {
        let app = AppProfile::new("rnd", CpuWork::from_cycles(1000))
            .with_reads(ByteSize::from_mib(1), IoPattern::Random);
        let a = run(&app, ExecMode::Native);
        let b = run(&app, ExecMode::Native);
        assert_eq!(a, b);
    }
}
